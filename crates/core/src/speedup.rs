//! Speedup statistics and bucketing — the machinery behind the paper's
//! Tables V/VI and Figs. 10-12.

use serde::{Deserialize, Serialize};

/// Distribution statistics of a set of speedups (one Table V/VI column).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedupStats {
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub p25: f64,
    pub p50: f64,
    pub p75: f64,
    pub max: f64,
    pub count: usize,
}

impl SpeedupStats {
    /// Compute stats from raw speedups.
    ///
    /// # Panics
    /// Panics on empty input.
    pub fn from_samples(samples: &[f64]) -> SpeedupStats {
        assert!(!samples.is_empty(), "no speedup samples");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|&s| (s - mean) * (s - mean)).sum::<f64>() / n;
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite speedups"));
        SpeedupStats {
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            p25: percentile(&sorted, 0.25),
            p50: percentile(&sorted, 0.50),
            p75: percentile(&sorted, 0.75),
            max: *sorted.last().expect("non-empty"),
            count: samples.len(),
        }
    }
}

/// Linear-interpolated percentile of pre-sorted data.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (pos - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// A labelled memory bucket (Figs. 11/12 use 100 MB-wide buckets).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryBucket {
    pub label: String,
    pub lo_bytes: u64,
    pub hi_bytes: u64,
}

/// The paper's five buckets: 0-100 … 400-500 MB.
pub fn paper_buckets() -> Vec<MemoryBucket> {
    (0..5)
        .map(|i| MemoryBucket {
            label: format!("{}-{} MB", i * 100, (i + 1) * 100),
            lo_bytes: i * 100_000_000,
            hi_bytes: (i + 1) * 100_000_000,
        })
        .collect()
}

/// Mean of the values whose memory footprint falls in the bucket.
pub fn bucket_mean(pairs: &[(u64, f64)], bucket: &MemoryBucket) -> Option<f64> {
    let values: Vec<f64> = pairs
        .iter()
        .filter(|(bytes, _)| *bytes >= bucket.lo_bytes && *bytes < bucket.hi_bytes)
        .map(|&(_, v)| v)
        .collect();
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_sample() {
        let s = SpeedupStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.p25, 2.0);
        assert_eq!(s.p75, 4.0);
        assert!((s.std_dev - 2.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.count, 5);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [0.0, 10.0];
        assert_eq!(percentile(&sorted, 0.5), 5.0);
        assert_eq!(percentile(&sorted, 0.25), 2.5);
    }

    #[test]
    fn single_sample_stats() {
        let s = SpeedupStats::from_samples(&[1.3]);
        assert_eq!(s.mean, 1.3);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.p25, 1.3);
        assert_eq!(s.max, 1.3);
    }

    #[test]
    #[should_panic(expected = "no speedup samples")]
    fn empty_samples_panic() {
        SpeedupStats::from_samples(&[]);
    }

    #[test]
    fn buckets_cover_0_to_500mb() {
        let buckets = paper_buckets();
        assert_eq!(buckets.len(), 5);
        assert_eq!(buckets[0].lo_bytes, 0);
        assert_eq!(buckets[4].hi_bytes, 500_000_000);
        assert_eq!(buckets[1].label, "100-200 MB");
    }

    #[test]
    fn bucket_mean_filters_by_footprint() {
        let pairs = vec![(50_000_000u64, 2.0), (150_000_000, 4.0), (160_000_000, 6.0)];
        let buckets = paper_buckets();
        assert_eq!(bucket_mean(&pairs, &buckets[0]), Some(2.0));
        assert_eq!(bucket_mean(&pairs, &buckets[1]), Some(5.0));
        assert_eq!(bucket_mean(&pairs, &buckets[4]), None);
    }
}
