//! The ADSALA runtime library (the paper's Fig. 3).
//!
//! [`AdsalaGemm`] is the C++-class analogue the paper describes: it loads
//! the two installation artefacts once, then serves GEMM calls. For every
//! call it evaluates the model at each candidate thread count, runs with
//! the argmin, and **memoises the last decision** — "if the current GEMM
//! matrix dimensions are the same as the previous, the software will read
//! and apply the predictions from the responsible class attributes
//! without re-evaluation" (§III-C). An optional full cache extends the
//! memo to all previously seen shapes.

use adsala_gemm::gemm::{gemm_with_stats, GemmCall};
use adsala_gemm::GemmStats;
use adsala_ml::{AnyModel, Regressor};
use adsala_sampling::GemmShape;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::preprocess::PreprocessConfig;
use crate::select::predict_threads;

/// The outcome of a thread selection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThreadDecision {
    /// The chosen thread count.
    pub threads: u32,
    /// Model-predicted runtime at that count (seconds).
    pub predicted_runtime_s: f64,
    /// Whether the decision came from the memo rather than a model sweep.
    pub memoised: bool,
}

/// The runtime GEMM handle: artefacts + memoisation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdsalaGemm {
    /// Preprocessing artefact (the "config file").
    pub config: PreprocessConfig,
    /// Trained-model artefact.
    pub model: AnyModel,
    /// Candidate thread counts swept per decision.
    pub candidates: Vec<u32>,
    /// Keep every shape's decision, not just the last one.
    pub full_cache: bool,
    last: Option<((u64, u64, u64), ThreadDecision)>,
    cache: HashMap<(u64, u64, u64), ThreadDecision>,
    /// Model sweeps performed (diagnostics; memo hits don't count).
    pub evaluations: u64,
}

impl AdsalaGemm {
    /// Assemble a runtime handle from installation artefacts.
    pub fn new(config: PreprocessConfig, model: AnyModel, candidates: Vec<u32>) -> Self {
        assert!(!candidates.is_empty(), "need at least one candidate thread count");
        Self {
            config,
            model,
            candidates,
            full_cache: false,
            last: None,
            cache: HashMap::new(),
            evaluations: 0,
        }
    }

    /// Enable the all-shapes decision cache.
    pub fn with_full_cache(mut self) -> Self {
        self.full_cache = true;
        self
    }

    /// Pick the thread count for an `(m, k, n)` GEMM, memoising like the
    /// paper's runtime workflow.
    pub fn select_threads(&mut self, m: u64, k: u64, n: u64) -> ThreadDecision {
        let key = (m, k, n);
        if let Some((last_key, decision)) = self.last {
            if last_key == key {
                return ThreadDecision { memoised: true, ..decision };
            }
        }
        if self.full_cache {
            if let Some(&decision) = self.cache.get(&key) {
                let hit = ThreadDecision { memoised: true, ..decision };
                self.last = Some((key, decision));
                return hit;
            }
        }
        let shape = GemmShape::new(m, k, n);
        let threads = predict_threads(&self.model, &self.config, &self.candidates, shape);
        let pred_row = self.config.features_for(m, k, n, threads);
        let predicted_runtime_s =
            self.config.runtime_from_prediction(self.model.predict_row(&pred_row));
        let decision = ThreadDecision { threads, predicted_runtime_s, memoised: false };
        self.evaluations += 1;
        self.last = Some((key, decision));
        if self.full_cache {
            self.cache.insert(key, decision);
        }
        decision
    }

    /// Forget all memoised decisions (e.g. after a machine change).
    pub fn clear_memo(&mut self) {
        self.last = None;
        self.cache.clear();
    }

    /// Run a real single-precision GEMM on the host with the ML-selected
    /// thread count (clamped to `host_max_threads`), returning the chosen
    /// decision and the executed GEMM's statistics.
    ///
    /// Matrices are row-major with the given leading dimensions; computes
    /// `C ← α·A·B + β·C`.
    #[allow(clippy::too_many_arguments)]
    pub fn sgemm_host(
        &mut self,
        m: usize,
        n: usize,
        k: usize,
        alpha: f32,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        beta: f32,
        c: &mut [f32],
        ldc: usize,
        host_max_threads: u32,
    ) -> (ThreadDecision, GemmStats) {
        let decision = self.select_threads(m as u64, k as u64, n as u64);
        let threads = decision.threads.clamp(1, host_max_threads.max(1)) as usize;
        let call = GemmCall::new(m, n, k, threads);
        let stats = gemm_with_stats(&call, alpha, a, lda, b, ldb, beta, c, ldc);
        (decision, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gather::{GatherConfig, TrainingData};
    use crate::preprocess::fit_preprocess;
    use adsala_machine::{MachineModel, SimTimer};
    use adsala_ml::tune::ModelSpec;

    fn handle() -> AdsalaGemm {
        let timer = SimTimer::new(MachineModel::gadi());
        let config = GatherConfig { n_shapes: 60, reps: 2, ..GatherConfig::quick() };
        let data = TrainingData::gather(&timer, &config);
        let fitted = fit_preprocess(&data).unwrap();
        let mut model =
            ModelSpec::XgBoost { n_rounds: 40, max_depth: 4, eta: 0.2, lambda: 1.0 }.build(0);
        model.fit(&fitted.dataset.x, &fitted.dataset.y).unwrap();
        AdsalaGemm::new(fitted.config, model, data.ladder.counts)
    }

    #[test]
    fn decision_is_a_candidate() {
        let mut g = handle();
        let d = g.select_threads(256, 256, 256);
        assert!(g.candidates.contains(&d.threads));
        assert!(d.predicted_runtime_s > 0.0);
        assert!(!d.memoised);
    }

    #[test]
    fn repeated_shape_is_memoised() {
        let mut g = handle();
        let first = g.select_threads(128, 512, 128);
        let second = g.select_threads(128, 512, 128);
        assert!(!first.memoised);
        assert!(second.memoised);
        assert_eq!(first.threads, second.threads);
        assert_eq!(g.evaluations, 1, "memo hit must not re-evaluate");
    }

    #[test]
    fn different_shape_invalidates_last_memo() {
        let mut g = handle();
        g.select_threads(128, 512, 128);
        let other = g.select_threads(64, 64, 64);
        assert!(!other.memoised);
        assert_eq!(g.evaluations, 2);
        // Returning to the first shape without full cache re-evaluates.
        let back = g.select_threads(128, 512, 128);
        assert!(!back.memoised);
        assert_eq!(g.evaluations, 3);
    }

    #[test]
    fn full_cache_remembers_all_shapes() {
        let mut g = handle().with_full_cache();
        g.select_threads(128, 512, 128);
        g.select_threads(64, 64, 64);
        let back = g.select_threads(128, 512, 128);
        assert!(back.memoised);
        assert_eq!(g.evaluations, 2);
    }

    #[test]
    fn clear_memo_forces_reevaluation() {
        let mut g = handle();
        g.select_threads(100, 100, 100);
        g.clear_memo();
        let d = g.select_threads(100, 100, 100);
        assert!(!d.memoised);
        assert_eq!(g.evaluations, 2);
    }

    #[test]
    fn sgemm_host_computes_correct_product() {
        let mut g = handle();
        let m = 33;
        let k = 17;
        let n = 29;
        let a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32 - 3.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32 * 0.5).collect();
        let mut c = vec![0.0f32; m * n];
        let (decision, stats) = g.sgemm_host(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n, 4);
        assert!(decision.threads >= 1);
        assert!(stats.threads_used >= 1 && stats.threads_used <= 4);
        // Verify against the naive oracle.
        let mut c_ref = vec![0.0f32; m * n];
        adsala_gemm::naive::naive_gemm(
            adsala_gemm::Transpose::No,
            adsala_gemm::Transpose::No,
            m,
            n,
            k,
            1.0f32,
            &a,
            k,
            &b,
            n,
            0.0,
            &mut c_ref,
            n,
        );
        for (x, y) in c.iter().zip(&c_ref) {
            assert!((x - y).abs() <= 1e-3 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn serde_roundtrip_preserves_decisions() {
        let mut g = handle();
        let before = g.select_threads(512, 512, 512);
        let json = serde_json::to_string(&g).unwrap();
        let mut back: AdsalaGemm = serde_json::from_str(&json).unwrap();
        back.clear_memo();
        let after = back.select_threads(512, 512, 512);
        assert_eq!(before.threads, after.threads);
    }
}
