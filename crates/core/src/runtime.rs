//! The single-threaded ADSALA runtime facade (the paper's Fig. 3).
//!
//! [`AdsalaGemm`] keeps the C++-class shape the paper describes — load
//! the installation artefacts once, then serve calls through a
//! `&mut self` handle with §III-C memoisation — but it is now a thin
//! facade over the layered serving stack:
//!
//! * [`crate::bundle::ArtifactBundle`] performs the model sweeps
//!   (per-routine models with GEMM fallback),
//! * this facade keeps the single-client memo (last shape + optional
//!   full cache), keyed by the full `(routine, precision, dims)`
//!   [`OpShape`] so SYRK/GEMV/f64 traffic memoises too,
//! * execution goes through a lazily created persistent
//!   [`adsala_gemm::ThreadPool`], the same pooled dispatch the concurrent
//!   [`crate::service::AdsalaService`] uses — not spawn-per-call.
//!
//! Multi-client callers should use [`crate::service::AdsalaService`]
//! (shared `&self`, lock-striped cache); this facade exists so
//! single-threaded code, tests, and the repro binary keep their
//! `&mut self` ergonomics.

use adsala_gemm::dispatch::{GemmArgs, OpRequest, OpShape, OpStats, Precision};
use adsala_gemm::{Element, ThreadPool};
use adsala_ml::AnyModel;
use serde::{Deserialize, Error, Serialize, Value};
use std::collections::HashMap;

use crate::bundle::ArtifactBundle;
use crate::preprocess::PreprocessConfig;
use crate::service::{AdsalaService, RunOptions, ServiceConfig};
use crate::AdsalaError;

pub use crate::bundle::PlanDecision;

/// The single-threaded runtime handle: artefacts + memoisation.
#[derive(Debug)]
pub struct AdsalaGemm {
    bundle: ArtifactBundle,
    /// Keep every shape's decision, not just the last one.
    pub full_cache: bool,
    /// Memo keys carry the normalised thread cap alongside the shape: a
    /// capped sweep is a different optimisation problem, so a capped
    /// decision must never replay for an uncapped call (or vice versa).
    last: Option<((OpShape, u32), PlanDecision)>,
    cache: HashMap<(OpShape, u32), PlanDecision>,
    /// Model sweeps performed (diagnostics; memo hits don't count).
    pub evaluations: u64,
    /// Created on the first executing call, then reused — the facade
    /// pays the worker spawn once, like the service layer.
    pool: Option<ThreadPool>,
}

impl AdsalaGemm {
    /// Assemble a runtime handle from installation artefacts.
    pub fn new(config: PreprocessConfig, model: AnyModel, candidates: Vec<u32>) -> Self {
        Self::from_bundle(ArtifactBundle::new(config, model, candidates))
    }

    /// Wrap an artefact bundle in the single-threaded facade.
    pub fn from_bundle(bundle: ArtifactBundle) -> Self {
        Self {
            bundle,
            full_cache: false,
            last: None,
            cache: HashMap::new(),
            evaluations: 0,
            pool: None,
        }
    }

    /// Enable the all-shapes decision cache.
    pub fn with_full_cache(mut self) -> Self {
        self.full_cache = true;
        self
    }

    /// The immutable artefacts behind this handle.
    pub fn bundle(&self) -> &ArtifactBundle {
        &self.bundle
    }

    /// Preprocessing artefact (the "config file").
    pub fn config(&self) -> &PreprocessConfig {
        &self.bundle.config
    }

    /// The GEMM model (the table's mandatory slot).
    pub fn model(&self) -> &AnyModel {
        &self.bundle.models.gemm
    }

    /// Candidate thread counts swept per decision.
    pub fn candidates(&self) -> &[u32] {
        self.bundle.candidates()
    }

    /// Upgrade to the shared, concurrent serving layer, moving the
    /// artefacts across (the single-client memo does not carry over).
    pub fn into_service(self) -> AdsalaService {
        AdsalaService::new(self.bundle.into_shared())
    }

    /// Like [`AdsalaGemm::into_service`] with explicit tunables.
    pub fn into_service_with(self, cfg: ServiceConfig) -> AdsalaService {
        AdsalaService::with_config(self.bundle.into_shared(), cfg)
    }

    /// Pick the thread count for any operation, memoising like the
    /// paper's runtime workflow: "if the current GEMM matrix dimensions
    /// are the same as the previous, the software will read and apply the
    /// predictions … without re-evaluation" (§III-C) — here generalised
    /// to the full `(routine, precision, dims)` key.
    pub fn select_for(&mut self, shape: OpShape) -> PlanDecision {
        self.select_for_capped(shape, u32::MAX)
    }

    /// Like [`AdsalaGemm::select_for`], but the sweep only considers
    /// plans with at most `cap` threads, so the decision's prediction
    /// describes the configuration that actually executes. Caps at or
    /// above the grid's largest candidate share the uncapped memo entry.
    pub fn select_for_capped(&mut self, shape: OpShape, cap: u32) -> PlanDecision {
        let cap = cap.clamp(1, self.bundle.max_candidate_threads());
        let key = (shape, cap);
        if let Some((last_key, decision)) = self.last {
            if last_key == key {
                return PlanDecision { memoised: true, ..decision };
            }
        }
        if self.full_cache {
            if let Some(&decision) = self.cache.get(&key) {
                let hit = PlanDecision { memoised: true, ..decision };
                self.last = Some((key, decision));
                return hit;
            }
        }
        let decision = self.bundle.decide_op_capped(shape, cap);
        self.evaluations += 1;
        self.last = Some((key, decision));
        if self.full_cache {
            self.cache.insert(key, decision);
        }
        decision
    }

    /// The f32-GEMM special case of [`AdsalaGemm::select_for`].
    pub fn select_threads(&mut self, m: u64, k: u64, n: u64) -> PlanDecision {
        self.select_for(OpShape::gemm(Precision::F32, m, k, n))
    }

    /// Forget all memoised decisions (e.g. after a machine change).
    pub fn clear_memo(&mut self) {
        self.last = None;
        self.cache.clear();
    }

    /// Packing-arena counters of the lazily created execution pool's
    /// workspace; `None` before the first executing call. See
    /// [`crate::service::AdsalaService::workspace_stats`].
    pub fn workspace_stats(&self) -> Option<adsala_gemm::ArenaStats> {
        self.pool.as_ref().map(|pool| pool.workspace().arena_stats())
    }

    /// Serve one operation with default options: validate, decide
    /// (memoised), execute on the handle's persistent pool.
    pub fn run<T: Element>(
        &mut self,
        req: &mut OpRequest<'_, T>,
    ) -> Result<(PlanDecision, OpStats), AdsalaError> {
        self.run_with(req, RunOptions::default())
    }

    /// Like [`AdsalaGemm::run`] with per-call options (host thread cap,
    /// memo bypass).
    pub fn run_with<T: Element>(
        &mut self,
        req: &mut OpRequest<'_, T>,
        opts: RunOptions,
    ) -> Result<(PlanDecision, OpStats), AdsalaError> {
        req.validate()?;
        let shape = req.shape();
        let cap = opts.thread_cap().clamp(1, self.bundle.max_candidate_threads());
        let decision = if opts.bypass_cache {
            self.evaluations += 1;
            self.bundle.decide_op_capped(shape, cap)
        } else {
            self.select_for_capped(shape, cap)
        };
        let pool = self.pool.get_or_insert_with(ThreadPool::with_host_parallelism);
        // The cap bounded the sweep; the decision is the executed plan.
        let stats = req.execute_validated(pool, &decision.plan);
        Ok((decision, stats))
    }

    /// Run a real single-precision GEMM on the host with the ML-selected
    /// thread count (clamped to `host_max_threads`; v1 semantics: 0
    /// executes on one thread), returning the chosen
    /// decision and the executed call's statistics. A thin wrapper over
    /// [`AdsalaGemm::run_with`], kept so v1 callers migrate mechanically.
    ///
    /// Matrices are row-major with the given leading dimensions; computes
    /// `C ← α·A·B + β·C`.
    #[allow(clippy::too_many_arguments)] // BLAS-style signature
    pub fn sgemm_host(
        &mut self,
        m: usize,
        n: usize,
        k: usize,
        alpha: f32,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        beta: f32,
        c: &mut [f32],
        ldc: usize,
        host_max_threads: u32,
    ) -> Result<(PlanDecision, OpStats), AdsalaError> {
        let mut req: OpRequest<'_, f32> =
            GemmArgs::untransposed(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc).into();
        self.run_with(&mut req, RunOptions::with_host_cap(host_max_threads.max(1)))
    }
}

// The thread pool is a host resource, not state: serialise only the
// artefacts and the cache mode, and rebuild a cold handle on load. (The
// serde shim's derive has no field-skip support, hence the manual impls.)
impl Serialize for AdsalaGemm {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("bundle".into(), self.bundle.to_value()),
            ("full_cache".into(), self.full_cache.to_value()),
            ("evaluations".into(), self.evaluations.to_value()),
        ])
    }
}

impl Deserialize for AdsalaGemm {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let bundle: ArtifactBundle = serde::__get_field(v, "bundle")?;
        let full_cache: bool = serde::__get_field(v, "full_cache")?;
        let evaluations: u64 = serde::__get_field(v, "evaluations")?;
        let mut handle = Self::from_bundle(bundle);
        handle.full_cache = full_cache;
        handle.evaluations = evaluations;
        Ok(handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::tests::quick_bundle;
    use adsala_gemm::dispatch::{Routine, SyrkArgs};

    fn handle() -> AdsalaGemm {
        AdsalaGemm::from_bundle(quick_bundle())
    }

    #[test]
    fn decision_is_a_candidate() {
        let mut g = handle();
        let d = g.select_threads(256, 256, 256);
        assert!(g.candidates().contains(&d.threads()));
        assert!(d.predicted_runtime_s > 0.0);
        assert!(!d.memoised);
    }

    #[test]
    fn repeated_shape_is_memoised() {
        let mut g = handle();
        let first = g.select_threads(128, 512, 128);
        let second = g.select_threads(128, 512, 128);
        assert!(!first.memoised);
        assert!(second.memoised);
        assert_eq!(first.threads(), second.threads());
        assert_eq!(g.evaluations, 1, "memo hit must not re-evaluate");
    }

    #[test]
    fn different_shape_invalidates_last_memo() {
        let mut g = handle();
        g.select_threads(128, 512, 128);
        let other = g.select_threads(64, 64, 64);
        assert!(!other.memoised);
        assert_eq!(g.evaluations, 2);
        // Returning to the first shape without full cache re-evaluates.
        let back = g.select_threads(128, 512, 128);
        assert!(!back.memoised);
        assert_eq!(g.evaluations, 3);
    }

    #[test]
    fn routine_change_is_a_memo_miss_even_at_equal_feature_point() {
        // SYRK (m, k) and GEMM (m, k, m) share a feature-space point but
        // are distinct operations; §III-C memoisation must not cross them.
        let mut g = handle();
        let gemm = g.select_threads(300, 40, 300);
        let syrk = g.select_for(OpShape::syrk(Precision::F32, 300, 40));
        assert!(!syrk.memoised, "routines must not share memo slots");
        assert_eq!(g.evaluations, 2);
        // Without a dedicated SYRK model both sweeps see the same
        // features, so the decision itself agrees bit for bit.
        assert_eq!(gemm.threads(), syrk.threads());
        assert_eq!(gemm.predicted_runtime_s.to_bits(), syrk.predicted_runtime_s.to_bits());
    }

    #[test]
    fn full_cache_remembers_all_shapes() {
        let mut g = handle().with_full_cache();
        g.select_threads(128, 512, 128);
        g.select_threads(64, 64, 64);
        let back = g.select_threads(128, 512, 128);
        assert!(back.memoised);
        assert_eq!(g.evaluations, 2);
    }

    #[test]
    fn clear_memo_forces_reevaluation() {
        let mut g = handle();
        g.select_threads(100, 100, 100);
        g.clear_memo();
        let d = g.select_threads(100, 100, 100);
        assert!(!d.memoised);
        assert_eq!(g.evaluations, 2);
    }

    #[test]
    fn facade_agrees_with_service_decisions() {
        let mut g = handle();
        let svc = AdsalaService::with_config(
            g.bundle().clone().into_shared(),
            ServiceConfig { pool_workers: 1, ..ServiceConfig::default() },
        );
        for (m, k, n) in [(64, 64, 64), (128, 512, 128), (64, 4096, 64)] {
            assert_eq!(g.select_threads(m, k, n).threads(), svc.select_threads(m, k, n).threads());
        }
        let shape = OpShape::syrk(Precision::F64, 500, 100);
        assert_eq!(g.select_for(shape).threads(), svc.select_for(shape).threads());
    }

    #[test]
    fn sgemm_host_computes_correct_product() {
        let mut g = handle();
        let m = 33;
        let k = 17;
        let n = 29;
        let a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32 - 3.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32 * 0.5).collect();
        let mut c = vec![0.0f32; m * n];
        let (decision, stats) =
            g.sgemm_host(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n, 4).unwrap();
        assert!(decision.threads() >= 1);
        assert!(stats.exec.threads_used >= 1 && stats.exec.threads_used <= 4);
        // Verify against the naive oracle.
        let mut c_ref = vec![0.0f32; m * n];
        adsala_gemm::naive::naive_gemm(
            adsala_gemm::Transpose::No,
            adsala_gemm::Transpose::No,
            m,
            n,
            k,
            1.0f32,
            &a,
            k,
            &b,
            n,
            0.0,
            &mut c_ref,
            n,
        );
        for (x, y) in c.iter().zip(&c_ref) {
            assert!((x - y).abs() <= 1e-3 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn run_serves_syrk_and_reports_shape_errors() {
        let mut g = handle();
        let (m, k) = (20usize, 12usize);
        let a: Vec<f64> = (0..m * k).map(|i| (i % 11) as f64 - 5.0).collect();
        let mut c = vec![0.0f64; m * m];
        let mut req: OpRequest<'_, f64> =
            SyrkArgs { m, k, alpha: 1.0, a: &a, lda: k, beta: 0.0, c: &mut c, ldc: m }.into();
        let (_, stats) = g.run(&mut req).unwrap();
        assert_eq!(stats.routine, Routine::Syrk);

        let mut short = vec![0.0f64; m]; // far too small for m×m
        let mut bad: OpRequest<'_, f64> =
            SyrkArgs { m, k, alpha: 1.0, a: &a, lda: k, beta: 0.0, c: &mut short, ldc: m }.into();
        match g.run(&mut bad) {
            Err(AdsalaError::Shape(e)) => assert_eq!(e.routine, Routine::Syrk),
            other => panic!("expected shape error, got {other:?}"),
        }
    }

    #[test]
    fn serde_roundtrip_preserves_decisions() {
        let mut g = handle();
        let before = g.select_threads(512, 512, 512);
        let json = serde_json::to_string(&g).unwrap();
        let mut back: AdsalaGemm = serde_json::from_str(&json).unwrap();
        back.clear_memo();
        let after = back.select_threads(512, 512, 512);
        assert_eq!(before.threads(), after.threads());
    }
}
