//! Online adaptation — the control plane that closes the loop from
//! execution back to the model.
//!
//! The paper trains its runtime-prediction models once at install time
//! and serves them forever; but the serving stack already measures
//! `wall_ns` for every executed op, so production traffic is a free,
//! perfectly-targeted training set. This module spends it, in three
//! pieces layered on the data plane without slowing it down:
//!
//! 1. [`ObservationReservoir`] — a bounded, lock-cheap sink the service
//!    and scheduler feed with `(shape, plan, predicted, measured)`
//!    tuples. The hot path is a sampling check, one `try_lock`, and a
//!    copy into a preallocated ring: zero allocation, and contention
//!    *drops* the observation rather than blocking the caller.
//! 2. [`DriftDetector`] — per-routine exponentially-weighted moving
//!    averages of |ln(measured / predicted)|. When a routine's rolling
//!    error exceeds a configurable band (thermal throttling, a
//!    co-tenant, frequency scaling — anything that invalidates the
//!    install-time timings), the detector trips and the service stops
//!    trusting model *choices*, serving conservative max-threads plans
//!    until the error recovers or a retrain lands.
//! 3. [`OnlineAdapter`] / [`retrain_now`] — a background retrainer that
//!    rebuilds the affected [`crate::artifact::ModelTable`] entries from
//!    the reservoir (the same `train` machinery as installation, fed
//!    observed rather than synthetic timings) and atomically hot-swaps
//!    the service's `Arc<ArtifactBundle>` under live traffic.
//!
//! **Epoch semantics.** A swap is two ordered steps: publish the new
//! bundle (one `RwLock` write), then bump the decision-cache generation.
//! Serving threads read the generation *before* loading the bundle and
//! publish decisions via `insert_if_generation`, so a decision computed
//! against bundle generation `g` can never enter the memo at generation
//! `g+1` — readers always see a coherent `(bundle, memo)` epoch, and a
//! swap neither blocks nor drops an in-flight request (requests already
//! executing simply finish under the plan they decided with).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use adsala_gemm::plan::{BlockScale, ExecutionPlan, IsaChoice, PlanGrid, PlanPoint};
use adsala_gemm::{BlockSizes, KernelIsa, OpShape, Precision, Routine};
use adsala_ml::data::{Dataset, Matrix};
use adsala_ml::tune::ModelSpec;
use parking_lot::{Condvar, Mutex};

use crate::service::AdsalaService;
use crate::train::train_family;
use crate::AdsalaError;

/// One executed operation, as the feedback loop sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// What ran.
    pub shape: OpShape,
    /// The plan it ran under.
    pub plan: ExecutionPlan,
    /// The model's runtime prediction for that plan (seconds; ≤ 0 when
    /// the call carried no prediction).
    pub predicted_runtime_s: f64,
    /// Measured end-to-end wall time (nanoseconds).
    pub wall_ns: u64,
}

/// Tunables for the always-on observation/drift side of the loop.
/// `Copy` so it can ride inside [`crate::service::ServiceConfig`].
#[derive(Debug, Clone, Copy)]
pub struct OnlineConfig {
    /// Whether a tripped drift detector changes behaviour (conservative
    /// fallback plans). Observation and error accounting are always on;
    /// this gates the control action only, so a default service behaves
    /// bit-identically to one with no online layer at all.
    pub enabled: bool,
    /// Total observations resident across all reservoir stripes.
    pub reservoir_capacity: usize,
    /// Reservoir lock stripes (rounded up to a power of two).
    pub reservoir_stripes: usize,
    /// Keep every `sample_every`-th observation (1 = keep all). Under
    /// heavy load a sparser sample keeps reservoir locking negligible
    /// without biasing the shape mix.
    pub sample_every: u32,
    /// Drift-detector band.
    pub drift: DriftConfig,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            reservoir_capacity: 4096,
            reservoir_stripes: 8,
            sample_every: 1,
            drift: DriftConfig::default(),
        }
    }
}

impl OnlineConfig {
    /// The config with the drift-fallback control action switched on.
    pub fn enabled() -> Self {
        Self { enabled: true, ..Self::default() }
    }
}

/// Reservoir occupancy and traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReservoirStats {
    /// Observations currently resident.
    pub resident: u64,
    /// Observations accepted since construction (drains don't reset it).
    pub recorded: u64,
    /// Observations dropped because a stripe was contended (`try_lock`
    /// failed) — the price of never blocking the hot path.
    pub contended_drops: u64,
    /// Observations skipped by the sampling rate.
    pub sampled_out: u64,
}

struct Stripe {
    buf: Vec<Observation>,
    /// Overwrite cursor once the stripe is full (bounded ring).
    next: usize,
}

/// A bounded, striped, never-blocking sink of [`Observation`]s.
///
/// Writers pay a relaxed fetch-add (sampling), one `try_lock`, and a
/// `Vec` write into preallocated storage. A contended stripe drops the
/// observation; a full stripe overwrites its oldest resident — both are
/// fine for a statistical training set, and neither can stall a serving
/// thread.
pub struct ObservationReservoir {
    stripes: Box<[Mutex<Stripe>]>,
    stripe_mask: usize,
    per_stripe_capacity: usize,
    sample_every: u32,
    calls: AtomicU64,
    recorded: AtomicU64,
    contended_drops: AtomicU64,
    sampled_out: AtomicU64,
}

impl std::fmt::Debug for ObservationReservoir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObservationReservoir")
            .field("stripes", &self.stripes.len())
            .field("per_stripe_capacity", &self.per_stripe_capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

impl ObservationReservoir {
    /// Build a reservoir with `stripes` lock stripes (rounded up to a
    /// power of two, at least 1) sharing `capacity` total slots, keeping
    /// every `sample_every`-th observation. All storage is allocated up
    /// front.
    pub fn new(stripes: usize, capacity: usize, sample_every: u32) -> Self {
        let stripes = stripes.max(1).next_power_of_two();
        let per_stripe_capacity = capacity.div_ceil(stripes).max(1);
        Self {
            stripes: (0..stripes)
                .map(|_| {
                    Mutex::new(Stripe { buf: Vec::with_capacity(per_stripe_capacity), next: 0 })
                })
                .collect(),
            stripe_mask: stripes - 1,
            per_stripe_capacity,
            sample_every: sample_every.max(1),
            calls: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            contended_drops: AtomicU64::new(0),
            sampled_out: AtomicU64::new(0),
        }
    }

    /// Offer one observation. Never blocks and never allocates: sampled
    /// out, dropped on stripe contention, or copied into the ring.
    /// Returns `true` only if the observation is now resident.
    pub fn record(&self, obs: Observation) -> bool {
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        if self.sample_every > 1 && call % self.sample_every as u64 != 0 {
            self.sampled_out.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        // Rotate stripes by arrival order so concurrent writers spread out.
        let stripe = &self.stripes[(call as usize) & self.stripe_mask];
        let Some(mut guard) = stripe.try_lock() else {
            self.contended_drops.fetch_add(1, Ordering::Relaxed);
            return false;
        };
        if guard.buf.len() < self.per_stripe_capacity {
            guard.buf.push(obs);
        } else {
            let slot = guard.next;
            guard.buf[slot] = obs;
            guard.next = (slot + 1) % self.per_stripe_capacity;
        }
        drop(guard);
        self.recorded.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Take every resident observation, leaving the reservoir empty but
    /// with its storage still preallocated. Called by the (cold)
    /// retrainer, so it may block on the stripe locks.
    pub fn drain(&self) -> Vec<Observation> {
        let mut out = Vec::new();
        for stripe in self.stripes.iter() {
            let mut guard = stripe.lock();
            out.append(&mut guard.buf);
            guard.next = 0;
        }
        out
    }

    /// Observations currently resident.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().buf.len()).sum()
    }

    /// `true` when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity (per-stripe bound × stripe count).
    pub fn capacity(&self) -> usize {
        self.per_stripe_capacity * self.stripes.len()
    }

    /// Snapshot the traffic counters.
    pub fn stats(&self) -> ReservoirStats {
        ReservoirStats {
            resident: self.len() as u64,
            recorded: self.recorded.load(Ordering::Relaxed),
            contended_drops: self.contended_drops.load(Ordering::Relaxed),
            sampled_out: self.sampled_out.load(Ordering::Relaxed),
        }
    }
}

/// The drift detector's trip band.
#[derive(Debug, Clone, Copy)]
pub struct DriftConfig {
    /// EWMA smoothing factor in (0, 1]; smaller = slower, steadier.
    pub alpha: f64,
    /// Trip when a routine's rolling |ln(measured/predicted)| exceeds
    /// this (0.35 ≈ a sustained 42% runtime miss).
    pub trip_abs_log_error: f64,
    /// Recover (untrip) when the rolling error falls back below this;
    /// keeping it well under the trip threshold gives hysteresis.
    pub recover_abs_log_error: f64,
    /// Ignore a routine until it has this many observations, so a cold
    /// EWMA can't trip on startup noise.
    pub min_samples: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self { alpha: 0.1, trip_abs_log_error: 0.35, recover_abs_log_error: 0.15, min_samples: 32 }
    }
}

/// Rolling state for one routine.
#[derive(Debug, Clone, Copy, Default)]
struct RoutineErrorState {
    samples: u64,
    ewma_abs_log: f64,
}

/// One routine's rolling error, as reported in [`DriftSnapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RoutineDriftStats {
    /// Observations folded into this routine's EWMA.
    pub samples: u64,
    /// Rolling |ln(measured / predicted)|.
    pub ewma_abs_log_error: f64,
}

/// Point-in-time view of the detector.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DriftSnapshot {
    /// Whether the detector is currently tripped.
    pub tripped: bool,
    /// Times the detector has tripped since construction.
    pub trips: u64,
    /// Per-routine rolling error, indexed like [`Routine`] (GEMM, SYRK,
    /// GEMV); use [`DriftSnapshot::for_routine`].
    pub routines: [RoutineDriftStats; 3],
}

impl DriftSnapshot {
    /// This routine's rolling error.
    pub fn for_routine(&self, routine: Routine) -> RoutineDriftStats {
        self.routines[routine_index(routine)]
    }

    /// The worst rolling error across routines with any samples.
    pub fn max_ewma_abs_log_error(&self) -> f64 {
        self.routines
            .iter()
            .filter(|r| r.samples > 0)
            .map(|r| r.ewma_abs_log_error)
            .fold(0.0, f64::max)
    }
}

fn routine_index(routine: Routine) -> usize {
    match routine {
        Routine::Gemm => 0,
        Routine::Syrk => 1,
        Routine::Gemv => 2,
    }
}

/// Per-routine rolling predicted-vs-measured error with a trip wire.
///
/// Readers (the serving hot path) pay one relaxed `AtomicBool` load via
/// [`DriftDetector::is_drifted`]; the per-observation update takes one
/// short per-routine mutex that only the observation path touches.
#[derive(Debug)]
pub struct DriftDetector {
    config: DriftConfig,
    routines: [Mutex<RoutineErrorState>; 3],
    drifted: AtomicBool,
    trips: AtomicU64,
}

impl DriftDetector {
    /// Build a detector with the given band.
    pub fn new(config: DriftConfig) -> Self {
        Self {
            config,
            routines: [
                Mutex::new(RoutineErrorState::default()),
                Mutex::new(RoutineErrorState::default()),
                Mutex::new(RoutineErrorState::default()),
            ],
            drifted: AtomicBool::new(false),
            trips: AtomicU64::new(0),
        }
    }

    /// The configured band.
    pub fn config(&self) -> DriftConfig {
        self.config
    }

    /// Fold in one executed op. Pairs without a prediction or a
    /// measurement are ignored (they say nothing about model quality).
    pub fn record(&self, routine: Routine, predicted_s: f64, wall_ns: u64) {
        if !predicted_s.is_finite() || predicted_s <= 0.0 || wall_ns == 0 {
            return;
        }
        let abs_log = (wall_ns as f64 * 1e-9 / predicted_s).ln().abs().min(32.0);
        let (samples, ewma) = {
            let mut state = self.routines[routine_index(routine)].lock();
            state.samples += 1;
            state.ewma_abs_log = if state.samples == 1 {
                abs_log
            } else {
                state.ewma_abs_log + self.config.alpha * (abs_log - state.ewma_abs_log)
            };
            (state.samples, state.ewma_abs_log)
        };
        if samples < self.config.min_samples {
            return;
        }
        if ewma > self.config.trip_abs_log_error {
            if !self.drifted.swap(true, Ordering::Relaxed) {
                self.trips.fetch_add(1, Ordering::Relaxed);
            }
        } else if ewma < self.config.recover_abs_log_error && self.drifted.load(Ordering::Relaxed) {
            // Hysteresis: only a clear recovery (or a reset after a
            // retrain) untrips. One routine recovering is enough only if
            // no other routine is still outside the band.
            let any_bad = (0..3).any(|i| {
                let s = self.routines[i].lock();
                s.samples >= self.config.min_samples
                    && s.ewma_abs_log > self.config.recover_abs_log_error
            });
            if !any_bad {
                self.drifted.store(false, Ordering::Relaxed);
            }
        }
    }

    /// Whether the detector is currently tripped (one relaxed load — this
    /// is the serving path's only interaction with the detector).
    pub fn is_drifted(&self) -> bool {
        self.drifted.load(Ordering::Relaxed)
    }

    /// Times the detector has tripped since construction.
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Zero every rolling error and untrip — called when a freshly
    /// retrained bundle goes live, because the old EWMAs measured the old
    /// model.
    pub fn reset(&self) {
        for state in &self.routines {
            *state.lock() = RoutineErrorState::default();
        }
        self.drifted.store(false, Ordering::Relaxed);
    }

    /// Snapshot trips and per-routine rolling error.
    pub fn snapshot(&self) -> DriftSnapshot {
        let mut routines = [RoutineDriftStats::default(); 3];
        for (i, slot) in routines.iter_mut().enumerate() {
            let s = self.routines[i].lock();
            *slot = RoutineDriftStats { samples: s.samples, ewma_abs_log_error: s.ewma_abs_log };
        }
        DriftSnapshot { tripped: self.is_drifted(), trips: self.trips(), routines }
    }
}

/// Invert [`PlanPoint::materialise`] as far as the grid allows: recover
/// the abstract grid point a concrete executed plan corresponds to, so an
/// observation can be featurised exactly like the install sweep that
/// trained the model. Thread count, packing and algorithm invert exactly;
/// the ISA inverts to `Scalar` iff the plan pinned the scalar kernel; a
/// materialised blocking override is matched against the grid's
/// `blockings` (host-default blocking ⇒ the uniform 100 triple). An
/// off-grid blocking falls back to the default triple rather than failing
/// — the feature is then slightly wrong for that row, which a statistical
/// refit tolerates.
pub fn point_for_plan(grid: &PlanGrid, precision: Precision, plan: &ExecutionPlan) -> PlanPoint {
    let isa = match plan.kernel_isa {
        Some(KernelIsa::Scalar) => IsaChoice::Scalar,
        _ => IsaChoice::Dispatched,
    };
    let blocking = match plan.blocking {
        None => BlockScale::default(),
        Some(concrete) => {
            let base = BlockSizes::dispatched_for(precision);
            grid.blockings
                .iter()
                .copied()
                .find(|s| base.scaled_axes(s.mc_percent, s.kc_percent, s.nc_percent) == concrete)
                .unwrap_or_default()
        }
    };
    PlanPoint {
        threads: plan.threads.max(1),
        isa,
        blocking,
        packing: plan.packing,
        algorithm: plan.algorithm,
    }
}

/// Tunables for the retrainer.
#[derive(Debug, Clone)]
pub struct RetrainConfig {
    /// A routine is only refit once the reservoir holds at least this
    /// many of its observations (a tiny refit would trade a stale model
    /// for an overfit one).
    pub min_observations: usize,
    /// The model family/hyperparameters to refit with. A single fixed
    /// spec, not a tuning grid: online refits must be fast and
    /// predictable, and the install already chose the family.
    pub spec: ModelSpec,
    /// Cross-validation folds for the (single-spec) fit.
    pub folds: usize,
    /// Seed for the fit.
    pub seed: u64,
    /// How often the background adapter wakes to check for work.
    pub poll_interval: Duration,
    /// Also retrain on this period even without drift (`None` = only on
    /// drift or explicit trigger).
    pub retrain_every: Option<Duration>,
}

impl Default for RetrainConfig {
    fn default() -> Self {
        Self {
            min_observations: 64,
            spec: ModelSpec::XgBoost { n_rounds: 40, max_depth: 4, eta: 0.2, lambda: 1.0 },
            folds: 3,
            seed: 0,
            poll_interval: Duration::from_millis(50),
            retrain_every: None,
        }
    }
}

/// What one retrain pass did.
#[derive(Debug, Clone, Default)]
pub struct RetrainOutcome {
    /// Routines whose model was refit and went live.
    pub retrained: Vec<Routine>,
    /// Routines that had observations but fewer than `min_observations`.
    pub skipped: Vec<Routine>,
    /// Observations drained from the reservoir for this pass.
    pub observations: usize,
    /// The cache generation the swap produced (`None` when nothing was
    /// retrained, so nothing swapped).
    pub swap_generation: Option<u64>,
    /// Time spent fitting models (off the serving path).
    pub train_latency: Duration,
    /// Time the swap itself took: the bundle publish plus the cache
    /// generation bump — the only moments serving threads can even
    /// notice, and neither blocks them.
    pub swap_latency: Duration,
}

impl RetrainOutcome {
    /// Whether a new bundle went live.
    pub fn swapped(&self) -> bool {
        self.swap_generation.is_some()
    }
}

/// Run one retrain pass synchronously: drain the reservoir, refit every
/// routine with enough observations (features and labels through the
/// bundle's *existing* preprocessing config, so routines that are not
/// refit stay consistent), and hot-swap the refreshed bundle into the
/// service. Returns without swapping when no routine has enough data.
///
/// Observations are drained destructively; a pass that refits nothing
/// still consumes what it drained (the reservoir is a stream, not a
/// database — the next pass sees the next window of traffic).
pub fn retrain_now(
    service: &AdsalaService,
    cfg: &RetrainConfig,
) -> Result<RetrainOutcome, AdsalaError> {
    let observations = service.drain_observations();
    let bundle = service.bundle();
    let mut by_routine: BTreeMap<&'static str, (Routine, Vec<Observation>)> = BTreeMap::new();
    for obs in &observations {
        if obs.wall_ns == 0 {
            continue;
        }
        by_routine
            .entry(obs.shape.routine.as_str())
            .or_insert_with(|| (obs.shape.routine, Vec::new()))
            .1
            .push(*obs);
    }

    let fit_start = Instant::now();
    let mut models = bundle.models.clone();
    let mut outcome = RetrainOutcome { observations: observations.len(), ..Default::default() };
    for (routine, rows) in by_routine.into_values() {
        if rows.len() < cfg.min_observations {
            outcome.skipped.push(routine);
            continue;
        }
        let x: Vec<Vec<f64>> = rows
            .iter()
            .map(|o| {
                if bundle.grid.plan_features {
                    let point = point_for_plan(&bundle.grid, o.shape.precision, &o.plan);
                    bundle.config.features_for_op_plan(&o.shape, &point, bundle.grid.feature_rev)
                } else {
                    bundle.config.features_for_op(&o.shape, o.plan.threads)
                }
            })
            .collect();
        let y: Vec<f64> =
            rows.iter().map(|o| bundle.config.label_for_runtime(o.wall_ns as f64 * 1e-9)).collect();
        let data = Dataset::new(Matrix::from_rows(&x), y)?;
        let trained = train_family(
            cfg.spec.kind(),
            Some(std::slice::from_ref(&cfg.spec)),
            &data,
            cfg.folds,
            cfg.seed,
        )?;
        models = models.with(routine, trained.model);
        outcome.retrained.push(routine);
    }
    outcome.train_latency = fit_start.elapsed();

    if !outcome.retrained.is_empty() {
        let refreshed = bundle.refreshed(models).into_shared();
        let swap_start = Instant::now();
        let generation = service.swap_bundle(refreshed);
        outcome.swap_latency = swap_start.elapsed();
        outcome.swap_generation = Some(generation);
    }
    Ok(outcome)
}

#[derive(Debug, Default)]
struct AdapterState {
    stop: bool,
    kick: bool,
}

#[derive(Debug)]
struct AdapterShared {
    state: Mutex<AdapterState>,
    wake: Condvar,
    retrain_passes: AtomicU64,
    swaps: AtomicU64,
    errors: AtomicU64,
    last_outcome: Mutex<Option<RetrainOutcome>>,
}

/// The background retrainer thread: wakes on a poll interval (or an
/// explicit [`OnlineAdapter::trigger`]), and when the service's drift
/// detector is tripped — or the periodic schedule is due — runs
/// [`retrain_now`] and hot-swaps the result. Dropping the adapter stops
/// and joins the thread.
#[derive(Debug)]
pub struct OnlineAdapter {
    shared: Arc<AdapterShared>,
    handle: Option<JoinHandle<()>>,
}

impl OnlineAdapter {
    /// Spawn the retrainer against `service`.
    pub fn spawn(service: Arc<AdsalaService>, cfg: RetrainConfig) -> Self {
        let shared = Arc::new(AdapterShared {
            state: Mutex::new(AdapterState::default()),
            wake: Condvar::new(),
            retrain_passes: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            last_outcome: Mutex::new(None),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("adsala-online".into())
            .spawn(move || Self::run(thread_shared, service, cfg))
            .expect("spawn online adapter thread");
        Self { shared, handle: Some(handle) }
    }

    fn run(shared: Arc<AdapterShared>, service: Arc<AdsalaService>, cfg: RetrainConfig) {
        let mut last_scheduled = Instant::now();
        loop {
            let kicked = {
                let mut state = shared.state.lock();
                if !state.stop && !state.kick {
                    shared.wake.wait_for(&mut state, cfg.poll_interval);
                }
                if state.stop {
                    return;
                }
                std::mem::take(&mut state.kick)
            };
            let scheduled_due =
                cfg.retrain_every.is_some_and(|every| last_scheduled.elapsed() >= every);
            if !(kicked || scheduled_due || service.is_drifted()) {
                continue;
            }
            last_scheduled = Instant::now();
            shared.retrain_passes.fetch_add(1, Ordering::Relaxed);
            match retrain_now(&service, &cfg) {
                Ok(outcome) => {
                    if outcome.swapped() {
                        shared.swaps.fetch_add(1, Ordering::Relaxed);
                    }
                    *shared.last_outcome.lock() = Some(outcome);
                }
                Err(_) => {
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Ask the thread to run a retrain pass now (returns immediately).
    pub fn trigger(&self) {
        self.shared.state.lock().kick = true;
        self.shared.wake.notify_all();
    }

    /// Retrain passes attempted so far.
    pub fn retrain_passes(&self) -> u64 {
        self.shared.retrain_passes.load(Ordering::Relaxed)
    }

    /// Passes that produced a live hot-swap.
    pub fn swaps(&self) -> u64 {
        self.shared.swaps.load(Ordering::Relaxed)
    }

    /// Passes that failed (fit error); the thread keeps running.
    pub fn errors(&self) -> u64 {
        self.shared.errors.load(Ordering::Relaxed)
    }

    /// The most recent pass's outcome, if any pass has completed.
    pub fn last_outcome(&self) -> Option<RetrainOutcome> {
        self.shared.last_outcome.lock().clone()
    }

    /// Stop and join the background thread (also runs on drop).
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.state.lock().stop = true;
        self.shared.wake.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for OnlineAdapter {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsala_gemm::PackingStrategy;

    fn obs(i: u64) -> Observation {
        Observation {
            shape: OpShape::gemm(Precision::F32, 64 + i, 64, 64),
            plan: ExecutionPlan::with_threads(4),
            predicted_runtime_s: 1e-3,
            wall_ns: 1_000_000 + i,
        }
    }

    #[test]
    fn reservoir_records_and_drains() {
        let r = ObservationReservoir::new(2, 16, 1);
        assert!(r.is_empty());
        for i in 0..10 {
            assert!(r.record(obs(i)));
        }
        assert_eq!(r.len(), 10);
        let drained = r.drain();
        assert_eq!(drained.len(), 10);
        assert!(r.is_empty());
        let stats = r.stats();
        assert_eq!(stats.recorded, 10);
        assert_eq!(stats.contended_drops, 0);
        // Storage survives the drain: refill without reallocation.
        assert!(r.record(obs(99)));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn reservoir_is_bounded_and_overwrites_oldest() {
        let r = ObservationReservoir::new(1, 4, 1);
        assert_eq!(r.capacity(), 4);
        for i in 0..10 {
            r.record(obs(i));
        }
        assert_eq!(r.len(), 4, "ring must stay bounded");
        let drained = r.drain();
        // The four newest observations survive (6..10 in ring order).
        let mut walls: Vec<u64> = drained.iter().map(|o| o.wall_ns - 1_000_000).collect();
        walls.sort_unstable();
        assert_eq!(walls, vec![6, 7, 8, 9]);
    }

    #[test]
    fn reservoir_sampling_thins_the_stream() {
        let r = ObservationReservoir::new(1, 100, 4);
        for i in 0..40 {
            r.record(obs(i));
        }
        assert_eq!(r.len(), 10, "every 4th call is kept");
        assert_eq!(r.stats().sampled_out, 30);
    }

    #[test]
    fn reservoir_drops_on_contention_instead_of_blocking() {
        let r = ObservationReservoir::new(1, 8, 1);
        // Hold the only stripe hostage; the writer must drop, not block.
        let guard = r.stripes[0].lock();
        let start = Instant::now();
        assert!(!r.record(obs(0)));
        assert!(start.elapsed() < Duration::from_millis(100));
        drop(guard);
        assert_eq!(r.stats().contended_drops, 1);
        assert!(r.record(obs(1)));
    }

    #[test]
    fn drift_detector_trips_on_sustained_error_and_resets() {
        let cfg = DriftConfig { min_samples: 8, ..DriftConfig::default() };
        let d = DriftDetector::new(cfg);
        assert!(!d.is_drifted());
        // Perfect predictions: never trips.
        for _ in 0..50 {
            d.record(Routine::Gemm, 1e-3, 1_000_000);
        }
        assert!(!d.is_drifted());
        // A sustained 2× slowdown (ln 2 ≈ 0.69 > 0.35 trip band).
        for _ in 0..50 {
            d.record(Routine::Gemm, 1e-3, 2_000_000);
        }
        assert!(d.is_drifted());
        assert_eq!(d.trips(), 1);
        let snap = d.snapshot();
        assert!(snap.tripped);
        assert!(snap.for_routine(Routine::Gemm).ewma_abs_log_error > cfg.trip_abs_log_error);
        assert_eq!(snap.for_routine(Routine::Gemv).samples, 0);
        d.reset();
        assert!(!d.is_drifted());
        assert_eq!(d.snapshot().for_routine(Routine::Gemm).samples, 0);
        assert_eq!(d.trips(), 1, "reset clears state, not the trip count");
    }

    #[test]
    fn drift_detector_recovers_with_hysteresis() {
        let cfg = DriftConfig { min_samples: 4, alpha: 0.5, ..DriftConfig::default() };
        let d = DriftDetector::new(cfg);
        for _ in 0..20 {
            d.record(Routine::Syrk, 1e-3, 3_000_000);
        }
        assert!(d.is_drifted());
        // Accurate again: EWMA decays below the recover band and untrips.
        for _ in 0..40 {
            d.record(Routine::Syrk, 1e-3, 1_000_000);
        }
        assert!(!d.is_drifted(), "{:?}", d.snapshot());
    }

    #[test]
    fn drift_detector_needs_min_samples() {
        let cfg = DriftConfig { min_samples: 100, ..DriftConfig::default() };
        let d = DriftDetector::new(cfg);
        for _ in 0..99 {
            d.record(Routine::Gemm, 1e-3, 10_000_000);
        }
        assert!(!d.is_drifted(), "cold detector must not trip");
        d.record(Routine::Gemm, 1e-3, 10_000_000);
        assert!(d.is_drifted());
    }

    #[test]
    fn drift_detector_ignores_unpredicted_ops() {
        let d = DriftDetector::new(DriftConfig { min_samples: 1, ..DriftConfig::default() });
        for _ in 0..100 {
            d.record(Routine::Gemm, 0.0, 5_000_000);
            d.record(Routine::Gemm, -1.0, 5_000_000);
            d.record(Routine::Gemm, 1e-3, 0);
        }
        assert!(!d.is_drifted());
        assert_eq!(d.snapshot().for_routine(Routine::Gemm).samples, 0);
    }

    #[test]
    fn point_for_plan_inverts_materialise_across_the_grid() {
        for grid in [PlanGrid::full(vec![1, 2, 4, 8]), PlanGrid::widened(vec![1, 2, 4, 8], 512)] {
            for point in grid.points() {
                for precision in [Precision::F32, Precision::F64] {
                    let plan = point.materialise(precision);
                    assert_eq!(point_for_plan(&grid, precision, &plan), point, "{plan:?}");
                }
            }
        }
        // Threads-only plans invert on a threads-only grid too.
        let ladder = PlanGrid::threads_only(vec![1, 2, 4]);
        let plan = ExecutionPlan::with_threads(2);
        let point = point_for_plan(&ladder, Precision::F32, &plan);
        assert_eq!(point, PlanPoint::threads_only(2));
        assert_eq!(point.packing, PackingStrategy::SharedB);
    }

    #[test]
    fn point_for_plan_off_grid_blocking_falls_back_to_default() {
        let grid = PlanGrid::threads_only(vec![1, 2, 4]);
        let plan = ExecutionPlan::with_threads(4)
            .with_blocking(BlockSizes::dispatched_for(Precision::F32).scaled(73));
        assert_eq!(point_for_plan(&grid, Precision::F32, &plan).blocking, BlockScale::default());
    }
}
