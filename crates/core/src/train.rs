//! Model training: tune every candidate family on the training split
//! (the right half of the paper's Fig. 2).

use std::time::Instant;

use adsala_gemm::plan::PlanGrid;
use adsala_ml::data::Dataset;
use adsala_ml::metrics::normalised_rmse;
use adsala_ml::tune::{GridSearch, ModelSpec};
use adsala_ml::{AnyModel, ModelKind, Regressor};
use serde::{Deserialize, Serialize};

use crate::preprocess::PreprocessConfig;
use crate::AdsalaError;

/// One tuned family, its CV score and its fitted model.
pub struct TrainedCandidate {
    pub kind: ModelKind,
    pub spec: ModelSpec,
    pub cv_rmse: f64,
    pub model: AnyModel,
}

/// The per-family row of the paper's Tables III/IV.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelReport {
    pub kind: ModelKind,
    /// Test-set RMSE normalised by the mean predictor's RMSE.
    pub test_nrmse: f64,
    /// Mean speedup over the test shapes ignoring evaluation overhead.
    pub ideal_mean_speedup: f64,
    /// Aggregate (total-time ratio) speedup ignoring evaluation overhead.
    pub ideal_aggregate_speedup: f64,
    /// Measured model evaluation time per GEMM call, microseconds
    /// (a full thread-count selection sweep).
    pub eval_time_us: f64,
    /// Mean speedup including the evaluation overhead.
    pub est_mean_speedup: f64,
    /// Aggregate speedup including the evaluation overhead.
    pub est_aggregate_speedup: f64,
}

/// Tune one family (optionally with a custom grid) on the training split.
pub fn train_family(
    kind: ModelKind,
    grid_override: Option<&[ModelSpec]>,
    train: &Dataset,
    folds: usize,
    seed: u64,
) -> Result<TrainedCandidate, AdsalaError> {
    let gs = GridSearch { folds, seed };
    let default_grid;
    let grid: &[ModelSpec] = match grid_override {
        Some(g) => g,
        None => {
            default_grid = ModelSpec::default_grid(kind);
            &default_grid
        }
    };
    let (result, model) = gs.tune(grid, train)?;
    Ok(TrainedCandidate { kind, spec: result.spec, cv_rmse: result.cv_rmse, model })
}

/// Tune every requested family.
pub fn train_all_families(
    kinds: &[ModelKind],
    grids: &[(ModelKind, Vec<ModelSpec>)],
    train: &Dataset,
    folds: usize,
    seed: u64,
) -> Result<Vec<TrainedCandidate>, AdsalaError> {
    kinds
        .iter()
        .map(|&kind| {
            let over = grids.iter().find(|(k, _)| *k == kind).map(|(_, g)| g.as_slice());
            train_family(kind, over, train, folds, seed)
        })
        .collect()
}

/// Test-set normalised RMSE of a fitted model.
pub fn test_nrmse(model: &AnyModel, test: &Dataset) -> f64 {
    normalised_rmse(&model.predict(&test.x), &test.y)
}

/// Measure the per-call model-evaluation time: one full plan-selection
/// sweep (features + prediction for every candidate grid point), averaged
/// over `probes` distinct inputs and `reps` timed repetitions. Returns
/// seconds.
pub fn measure_eval_time(
    model: &AnyModel,
    config: &PreprocessConfig,
    grid: &PlanGrid,
    probes: &[(u64, u64, u64)],
    reps: u32,
) -> f64 {
    debug_assert!(!grid.is_empty() && !probes.is_empty());
    let sweep = |sink: &mut f64, m: u64, k: u64, n: u64| {
        for point in grid.points() {
            let row = if grid.plan_features {
                config.features_for_plan(m, k, n, &point, grid.feature_rev)
            } else {
                config.features_for(m, k, n, point.threads)
            };
            *sink += model.predict_row(&row);
        }
    };
    // Warm-up sweep so lazy CPU state doesn't inflate the first probe.
    let mut sink = 0.0f64;
    for &(m, k, n) in probes.iter().take(1) {
        sweep(&mut sink, m, k, n);
    }
    let reps = reps.max(1);
    let start = Instant::now();
    for _ in 0..reps {
        for &(m, k, n) in probes {
            sweep(&mut sink, m, k, n);
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    // Prevent the optimiser from deleting the loop.
    if sink.is_nan() {
        eprintln!("impossible: {sink}");
    }
    elapsed / (reps as f64 * probes.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsala_ml::data::Matrix;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    fn toy_dataset(n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(80);
        let rows: Vec<Vec<f64>> =
            (0..n).map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * r[0] - r[1]).collect();
        Dataset::new(Matrix::from_rows(&rows), y).unwrap()
    }

    #[test]
    fn train_family_returns_fitted_model() {
        let data = toy_dataset(150);
        let c = train_family(ModelKind::DecisionTree, None, &data, 3, 0).unwrap();
        assert_eq!(c.kind, ModelKind::DecisionTree);
        assert!(c.model.is_fitted());
        assert!(c.cv_rmse.is_finite() && c.cv_rmse >= 0.0);
    }

    #[test]
    fn grid_override_is_used() {
        let data = toy_dataset(100);
        let grid = vec![ModelSpec::DecisionTree { max_depth: 2, min_samples_leaf: 1 }];
        let c = train_family(ModelKind::DecisionTree, Some(&grid), &data, 3, 0).unwrap();
        assert_eq!(c.spec, grid[0]);
    }

    #[test]
    fn train_all_families_covers_requested_kinds() {
        let data = toy_dataset(120);
        let kinds = [ModelKind::LinearRegression, ModelKind::DecisionTree];
        let out = train_all_families(&kinds, &[], &data, 3, 0).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].kind, ModelKind::LinearRegression);
        assert_eq!(out[1].kind, ModelKind::DecisionTree);
    }

    #[test]
    fn nrmse_for_good_model_below_one() {
        let data = toy_dataset(200);
        let c = train_family(ModelKind::DecisionTree, None, &data, 3, 0).unwrap();
        let score = test_nrmse(&c.model, &data);
        assert!(score < 0.7, "tree should beat the mean predictor: {score}");
    }
}
