//! Install-time data gathering (the left half of the paper's Fig. 2).
//!
//! Shapes come from a scrambled Halton sampler under a memory cap; each
//! shape is timed at a candidate grid of execution plans — in the paper
//! just a ladder of thread counts, optionally extended with ISA, cache-
//! blocking and packing axes ([`adsala_gemm::PlanGrid`]) — each
//! configuration averaged over several repetitions. The paper runs
//! different thread counts in different program executions to avoid
//! perturbation — here that corresponds to independent noise streams per
//! `(shape, plan point)`.

use adsala_gemm::plan::{PlanGrid, PlanPoint};
use adsala_machine::GemmTimer;
use adsala_sampling::{DomainSampler, GemmShape, MemoryCap, Precision};
use serde::{Deserialize, Serialize};

/// One timed configuration: the atom of the training set. Every row
/// records the full plan point it was timed under; threads-only gathers
/// carry the default axes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GemmRecord {
    pub shape: GemmShape,
    /// The candidate plan this row was timed under.
    pub point: PlanPoint,
    /// Mean measured runtime in seconds.
    pub runtime_s: f64,
}

impl GemmRecord {
    /// The row's thread count (the point's thread axis).
    pub fn threads(&self) -> u32 {
        self.point.threads
    }
}

/// The thread counts at which each shape is timed.
///
/// Timing all 256 counts on a Setonix-sized node is wasteful; a geometric
/// ladder (plus the maximum) covers the response curve, and the regression
/// model interpolates between rungs at runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadLadder {
    pub counts: Vec<u32>,
}

impl ThreadLadder {
    /// Geometric-ish ladder: 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96,
    /// 128, 192, 256 — clipped to `max`, always including `max`.
    pub fn geometric(max: u32) -> Self {
        let base = [1u32, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256];
        let mut counts: Vec<u32> = base.iter().copied().filter(|&c| c <= max).collect();
        if counts.last() != Some(&max) {
            counts.push(max);
        }
        Self { counts }
    }

    /// Every thread count from 1 to `max` (used by the exhaustive
    /// optimal-thread histograms, Figs. 1/8/9).
    pub fn full(max: u32) -> Self {
        Self { counts: (1..=max).collect() }
    }

    /// Number of rungs.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// `true` if the ladder is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

/// Data-gathering configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GatherConfig {
    /// Number of GEMM shapes to sample (the paper uses 1763).
    pub n_shapes: usize,
    /// Memory cap for sampled shapes.
    pub cap: MemoryCap,
    /// Operand precision.
    pub precision: Precision,
    /// Repetitions per configuration (the paper times ten iterations).
    pub reps: u32,
    /// Thread ladder; `None` = geometric ladder up to the machine maximum.
    pub ladder: Option<ThreadLadder>,
    /// Per-dimension upper bound override (`None` = the paper's 74 000).
    /// Used when the routine's own constraints shrink the sensible domain
    /// (e.g. SYRK's `m×m` output).
    pub max_dim: Option<u64>,
    /// Candidate plan grid; `None` = a threads-only grid over the ladder
    /// (the paper's sweep). Setting a grid overrides `ladder` — the
    /// gathered ladder becomes the grid's thread axis.
    pub grid: Option<PlanGrid>,
    /// Halton scrambling / sampling seed.
    pub seed: u64,
}

impl GatherConfig {
    /// The paper's settings: 1763 shapes within 500 MB, ten repetitions.
    pub fn paper() -> Self {
        Self {
            n_shapes: 1763,
            cap: MemoryCap::paper_training(),
            precision: Precision::F32,
            reps: 10,
            ladder: None,
            max_dim: None,
            grid: None,
            seed: 0x2023_000A,
        }
    }

    /// A smaller configuration for quick runs and tests.
    pub fn quick() -> Self {
        Self { n_shapes: 160, reps: 3, ..Self::paper() }
    }
}

/// The gathered training set plus its provenance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingData {
    pub records: Vec<GemmRecord>,
    pub shapes: Vec<GemmShape>,
    pub ladder: ThreadLadder,
    /// The candidate grid the records were swept over (threads-only when
    /// gathering was ladder-based); its thread axis equals `ladder`.
    pub grid: PlanGrid,
    pub machine: String,
    pub max_threads: u32,
}

impl TrainingData {
    /// Gather timings for `config` from `timer`: every sampled shape is
    /// timed at every point of the candidate grid.
    pub fn gather<T: GemmTimer + ?Sized>(timer: &T, config: &GatherConfig) -> TrainingData {
        let grid = match (&config.grid, &config.ladder) {
            (Some(grid), _) => grid.clone(),
            (None, Some(ladder)) => PlanGrid::threads_only(ladder.counts.clone()),
            (None, None) => {
                PlanGrid::threads_only(ThreadLadder::geometric(timer.max_threads()).counts)
            }
        };
        let ladder = ThreadLadder { counts: grid.threads.clone() };
        let mut sampler = DomainSampler::new(config.cap, config.precision, config.seed);
        if let Some(max_dim) = config.max_dim {
            sampler = sampler.with_dim_bounds(1, max_dim);
        }
        let shapes = sampler.sample(config.n_shapes);
        let mut records = Vec::with_capacity(shapes.len() * grid.len());
        for &shape in &shapes {
            for point in grid.points() {
                records.push(GemmRecord {
                    shape,
                    point,
                    runtime_s: timer.time_plan(shape, &point, config.reps),
                });
            }
        }
        TrainingData {
            records,
            shapes,
            ladder,
            grid,
            machine: timer.name(),
            max_threads: timer.max_threads(),
        }
    }

    /// The measured-optimal thread count per shape (argmin over the
    /// sweep) — the quantity histogrammed in the paper's Figs. 1 and 8.
    pub fn optimal_threads(&self) -> Vec<(GemmShape, u32)> {
        self.optimal_points().into_iter().map(|(shape, point)| (shape, point.threads)).collect()
    }

    /// The measured-optimal plan point per shape (argmin over the grid).
    pub fn optimal_points(&self) -> Vec<(GemmShape, PlanPoint)> {
        self.shapes
            .iter()
            .map(|&shape| {
                let best = self
                    .records
                    .iter()
                    .filter(|r| r.shape == shape)
                    .min_by(|a, b| a.runtime_s.partial_cmp(&b.runtime_s).expect("finite runtimes"))
                    .expect("every shape has records");
                (shape, best.point)
            })
            .collect()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing was gathered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Histogram helper: counts of values in `bins` equal-width bins over
/// `[0, max]`. Returns `(bin_upper_edges, counts)`.
pub fn histogram(values: &[u32], max: u32, bins: usize) -> (Vec<u32>, Vec<usize>) {
    let bins = bins.max(1);
    let width = (max as f64 / bins as f64).max(1.0);
    let mut counts = vec![0usize; bins];
    for &v in values {
        let b = ((v as f64 / width).floor() as usize).min(bins - 1);
        counts[b] += 1;
    }
    let edges = (1..=bins).map(|b| (b as f64 * width).round() as u32).collect();
    (edges, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adsala_machine::{MachineModel, SimTimer};

    fn quick_data() -> TrainingData {
        let timer = SimTimer::new(MachineModel::gadi());
        let config = GatherConfig { n_shapes: 30, reps: 2, ..GatherConfig::quick() };
        TrainingData::gather(&timer, &config)
    }

    #[test]
    fn ladder_respects_max_and_includes_it() {
        let l = ThreadLadder::geometric(96);
        assert_eq!(*l.counts.last().unwrap(), 96);
        assert!(l.counts.iter().all(|c| (1..=96).contains(c)));
        assert!(l.counts.windows(2).all(|w| w[0] < w[1]), "ladder not sorted");
        let l = ThreadLadder::geometric(100);
        assert_eq!(*l.counts.last().unwrap(), 100);
    }

    #[test]
    fn full_ladder_is_exhaustive() {
        let l = ThreadLadder::full(8);
        assert_eq!(l.counts, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn gather_produces_expected_record_count() {
        let data = quick_data();
        assert_eq!(data.shapes.len(), 30);
        assert_eq!(data.len(), 30 * data.ladder.len());
        assert!(data.records.iter().all(|r| r.runtime_s > 0.0));
        assert!(data.grid.is_threads_only());
        assert!(data.records.iter().all(|r| r.point.is_default_axes()));
        assert_eq!(data.max_threads, 96);
    }

    #[test]
    fn grid_gather_sweeps_every_plan_point() {
        let timer = SimTimer::new(MachineModel::gadi());
        let grid = PlanGrid::full(vec![1, 8, 96]);
        let config = GatherConfig {
            n_shapes: 6,
            reps: 2,
            grid: Some(grid.clone()),
            ..GatherConfig::quick()
        };
        let data = TrainingData::gather(&timer, &config);
        assert_eq!(data.len(), 6 * grid.len());
        assert_eq!(data.ladder.counts, grid.threads, "ladder mirrors the grid's thread axis");
        assert_eq!(data.grid, grid);
        assert!(data.records.iter().all(|r| r.runtime_s > 0.0));
        // The default-axes rows are bit-identical to a plain ladder sweep
        // of the same shapes (same timer stream).
        let ladder_cfg = GatherConfig {
            n_shapes: 6,
            reps: 2,
            ladder: Some(ThreadLadder { counts: vec![1, 8, 96] }),
            ..GatherConfig::quick()
        };
        let ladder_data = TrainingData::gather(&timer, &ladder_cfg);
        let defaults: Vec<&GemmRecord> =
            data.records.iter().filter(|r| r.point.is_default_axes()).collect();
        assert_eq!(defaults.len(), ladder_data.records.len());
        for (a, b) in defaults.iter().zip(&ladder_data.records) {
            assert_eq!(**a, *b);
        }
        // Non-default axes actually change the measurement.
        let scalar = data
            .records
            .iter()
            .find(|r| r.point.isa == adsala_gemm::IsaChoice::Scalar)
            .expect("grid sweeps scalar points");
        let base = data
            .records
            .iter()
            .find(|r| {
                r.shape == scalar.shape && r.point == PlanPoint::threads_only(scalar.point.threads)
            })
            .unwrap();
        assert_ne!(scalar.runtime_s, base.runtime_s);
    }

    #[test]
    fn gather_is_deterministic() {
        let timer = SimTimer::new(MachineModel::gadi());
        let config = GatherConfig { n_shapes: 10, reps: 2, ..GatherConfig::quick() };
        let a = TrainingData::gather(&timer, &config);
        let b = TrainingData::gather(&timer, &config);
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn optimal_threads_one_entry_per_shape() {
        let data = quick_data();
        let opt = data.optimal_threads();
        assert_eq!(opt.len(), data.shapes.len());
        for (shape, best) in &opt {
            // The reported best must not lose to any ladder rung.
            let best_time = data
                .records
                .iter()
                .find(|r| r.shape == *shape && r.threads() == *best)
                .unwrap()
                .runtime_s;
            for r in data.records.iter().filter(|r| r.shape == *shape) {
                assert!(best_time <= r.runtime_s + 1e-15);
            }
        }
    }

    #[test]
    fn small_shapes_rarely_prefer_max_threads() {
        // The paper's Fig. 1 phenomenon must emerge from gathered data.
        let timer = SimTimer::new(MachineModel::gadi());
        let config = GatherConfig {
            n_shapes: 60,
            cap: MemoryCap::paper_small(),
            reps: 2,
            ..GatherConfig::quick()
        };
        let data = TrainingData::gather(&timer, &config);
        let opt = data.optimal_threads();
        let at_max = opt.iter().filter(|(_, p)| *p == 96).count();
        assert!(
            at_max * 3 < opt.len(),
            "{at_max}/{} small shapes still prefer max threads",
            opt.len()
        );
    }

    #[test]
    fn histogram_bins_cover_all_values() {
        let values = vec![1, 5, 10, 48, 96, 96];
        let (edges, counts) = histogram(&values, 96, 8);
        assert_eq!(edges.len(), 8);
        assert_eq!(counts.iter().sum::<usize>(), values.len());
    }
}
