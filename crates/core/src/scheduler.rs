//! Model-guided co-scheduling — the admission-controlled serving queue.
//!
//! [`crate::service::AdsalaService`] decides each request *alone*: every
//! call sweeps (or replays) the model for its own shape and dispatches
//! immediately, so N concurrent clients race for the pool and the gang
//! arbiter settles the collisions after the fact — the loser degrades to
//! independent packing. [`ServiceScheduler`] moves that arbitration
//! *before* dispatch, where the model can inform it:
//!
//! 1. **Admission**: clients block in [`ServiceScheduler::submit`] on a
//!    bounded queue (back-pressure instead of unbounded pile-up).
//! 2. **Co-planning**: queued ops are admitted in FIFO *waves*. For each
//!    op the scheduler holds the model's full predicted-runtime curve
//!    ([`crate::bundle::ArtifactBundle::decide_op_curve`]): what running
//!    at 1, 2, … threads is predicted to cost. A wave starts every op at
//!    its narrowest plan, then greedily widens whichever op is the
//!    predicted makespan bottleneck (LPT-style) while the pool's thread
//!    budget lasts and the model predicts an improvement.
//! 3. **Fusion**: same-shape GEMMs sharing one stored `B` operand
//!    ([`adsala_gemm::dispatch::FuseKey`]) collapse into one unit — one
//!    decision, one packed-B stream, N concurrent executes
//!    ([`OpRequest::execute_fused_refs_validated`]).
//! 4. **Firm gang dispatch**: because the sum of assigned threads never
//!    exceeds the budget (≤ pool workers), every shared-B gang
//!    reservation succeeds; the pool's 1-thread-packing fallback becomes
//!    the exception, observable as `gang_refused` staying flat in
//!    [`SchedulerStats`].
//!
//! Strict FIFO admission is what makes the queue starvation-free: the
//! head op is never bypassed, so a flood of heavy ops cannot indefinitely
//! delay a small one (and vice versa) — the wave simply waits until the
//! head's narrowest plan fits the free budget.
//!
//! Clients execute their own ops (the scheduler has no dispatcher
//! thread): a submitting thread parks until its ticket is planned, then
//! runs the kernel itself on the shared pool. For a fused unit the first
//! member drives the whole batch while the others stay parked until their
//! results — and per-op [`OpStats`] — are filled in.
//!
//! **Deadlines and load shedding.** Every park in the scheduler goes
//! through one timeout-aware wait primitive: a plain
//! [`ServiceScheduler::submit`] is simply the unbounded (`deadline =
//! None`) case of [`ServiceScheduler::submit_within`]. A bounded call
//! returns [`AdsalaError::Timeout`] instead of blocking forever — at the
//! admission gate (also bounded globally by
//! [`SchedulerConfig::admission_timeout`]), and while queued, where the
//! wave planner sheds expired tickets before planning each wave (counted
//! in `shed_expired`, surfaced to the owner as `Timeout` — never a
//! silent drop). Once an op is *admitted* it always runs to completion:
//! a fused member's pointer is held by its leader, and an in-flight
//! unit's threads must return to the budget, so expiry mid-execution is
//! deliberately not a cancellation point.
//!
//! **Panic isolation.** Solo and fused dispatches are guarded exactly
//! like [`AdsalaService::run_with`]: a kernel panic is caught, the pool
//! swept whole, and the op retried once on the degraded serial plan when
//! that is sound (idempotent, deadline permitting; for a fused batch,
//! member-by-member). Whatever the outcome, the unit completes — its
//! threads return to the budget and its wave settles — so a panicked op
//! can never wedge the queue. Unrecoverable members observe
//! [`AdsalaError::Execution`] on their own `submit` calls.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use adsala_gemm::dispatch::{FuseKey, OpRequest, OpShape, OpStats, Routine};
use adsala_gemm::plan::ExecutionPlan;
use adsala_gemm::Element;
use parking_lot::{Condvar, Mutex, MutexGuard};

use crate::service::{AdsalaService, RunOptions, ServiceStats};
use crate::AdsalaError;

/// Tunables for [`ServiceScheduler`].
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Queued (not yet admitted) ops beyond which `submit` blocks —
    /// the admission-control bound. Must be ≥ 1.
    pub max_queue: usize,
    /// Worker threads the planner may assign across concurrent ops;
    /// 0 means the service pool's worker count. Capping below the pool
    /// size leaves headroom for unscheduled traffic on the same pool.
    pub thread_budget: usize,
    /// Fuse same-shape shared-B GEMMs into one pooled dispatch.
    pub fuse: bool,
    /// Upper bound on any submit's wait at the admission gate (a full
    /// queue), regardless of the call's own deadline. `None` preserves
    /// unbounded blocking back-pressure.
    pub admission_timeout: Option<Duration>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self { max_queue: 64, thread_budget: 0, fuse: true, admission_timeout: None }
    }
}

/// What one scheduled op came back with: the jointly planned execution,
/// its model prediction, and the kernel report.
#[derive(Debug, Clone, Copy)]
pub struct ScheduledRun {
    /// The plan the co-scheduler assigned (for a fused op: the whole
    /// batch's plan; the driver splits its threads evenly per member).
    pub plan: ExecutionPlan,
    /// Model-predicted runtime of the assigned configuration in seconds.
    pub predicted_runtime_s: f64,
    /// `true` when the op ran as part of a fused same-shape batch.
    pub fused: bool,
    /// The executed kernel's report.
    pub stats: OpStats,
}

/// Point-in-time snapshot of the scheduler's counters, with the
/// underlying service's counters attached (gang traffic lives in
/// `service.pool`).
#[derive(Debug, Clone, Copy)]
pub struct SchedulerStats {
    /// Ops ever submitted.
    pub submitted: u64,
    /// Ops fully served (results handed back).
    pub completed: u64,
    /// Waves admitted so far.
    pub waves: u64,
    /// Waves whose every unit has completed.
    pub waves_completed: u64,
    /// Ops that executed inside a fused batch (leaders included).
    pub fused_ops: u64,
    /// Submits that blocked on a full admission queue.
    pub admission_waits: u64,
    /// Submits refused with [`AdsalaError::Timeout`] at the admission
    /// gate (queue still full when the wait's deadline passed).
    pub admission_timeouts: u64,
    /// Queued ops shed because their deadline passed before admission
    /// (each owner observed [`AdsalaError::Timeout`]; none were dropped
    /// silently or mid-execution).
    pub shed_expired: u64,
    /// Scheduled ops whose kernel fell back from the planned ISA.
    pub plan_downgrades: u64,
    /// Ops currently queued, not yet admitted.
    pub queue_depth: usize,
    /// High-water mark of `queue_depth`.
    pub max_queue_depth: usize,
    /// Threads currently assigned to in-flight ops.
    pub in_flight_threads: usize,
    /// High-water mark of `in_flight_threads` — never exceeds
    /// `thread_budget`.
    pub max_in_flight_threads: usize,
    /// The planner's worker budget.
    pub thread_budget: usize,
    /// Σ over completed waves of the model-predicted makespan (max
    /// predicted runtime across the wave's units), seconds.
    pub predicted_makespan_s: f64,
    /// Σ over completed waves of the measured admission→last-completion
    /// span, seconds. Compare against `predicted_makespan_s` to judge
    /// the model as a co-scheduling oracle.
    pub measured_makespan_s: f64,
    /// The wrapped service's counters (cache, pool gang traffic,
    /// workspace).
    pub service: ServiceStats,
}

impl SchedulerStats {
    /// Gang reservations the pool refused — the "loser repacks B alone"
    /// path the co-scheduler exists to make rare.
    pub fn gang_fallbacks(&self) -> u64 {
        self.service.pool.gang_refused
    }
}

/// The client's request, type-erased so heterogeneous (`f32`/`f64`)
/// tickets share one queue.
///
/// Safety invariant: the pointee is the `OpRequest` inside a client's
/// `submit` frame, and that client stays parked until its ticket reaches
/// `Phase::Done` — so the pointer is valid for the whole time the planner
/// or a fusion leader may dereference it, and never aliased (the owner
/// does not touch the request while parked).
#[derive(Debug, Clone, Copy)]
struct ErasedReq {
    ptr: *mut (),
}

// Tickets live inside the scheduler's mutex and hop between client
// threads; the invariant above makes that sound.
unsafe impl Send for ErasedReq {}

#[derive(Debug, Clone)]
enum Admission {
    /// Execute alone under the assigned plan.
    Solo { plan: ExecutionPlan, predicted_s: f64, threads: usize, wave: u64 },
    /// Drive the fused batch: own request plus `members`, in order.
    Leader { plan: ExecutionPlan, predicted_s: f64, threads: usize, wave: u64, members: Vec<u64> },
    /// Parked inside a fused batch; the leader fills in the result.
    Member,
}

#[derive(Debug)]
enum Phase {
    Queued,
    Admitted(Admission),
    Done {
        plan: ExecutionPlan,
        predicted_s: f64,
        fused: bool,
        stats: OpStats,
    },
    /// The ticket's deadline passed while it was still queued and the
    /// wave planner dropped it from the queue; the owner observes
    /// [`AdsalaError::Timeout`]. Admitted tickets are never shed.
    Shed,
    /// The op panicked and could not be recovered by the degraded retry;
    /// the owner observes [`AdsalaError::Execution`].
    Failed {
        routine: Routine,
        detail: String,
    },
}

/// A predicted-runtime curve: `(plan, seconds)` rows ascending by
/// threads, shared between the memo and the tickets holding it.
type PlanCurve = Arc<Vec<(ExecutionPlan, f64)>>;

/// The scheduler's curve memo: predicted-runtime curves per
/// `(shape, cap)`, tagged with the service generation they were
/// computed under.
type TaggedCurves = (u64, HashMap<(OpShape, u32), PlanCurve>);

#[derive(Debug)]
struct Ticket {
    /// Fusability class (`None` never fuses) plus the cap its curve was
    /// computed under — only identically-capped requests share a unit.
    fuse: Option<(FuseKey, u32)>,
    /// Predicted-runtime rows `(plan, seconds)` ascending by threads.
    curve: PlanCurve,
    slot: ErasedReq,
    phase: Phase,
    /// The owner's deadline; the wave planner sheds the ticket if this
    /// passes while it is still queued.
    deadline: Option<Instant>,
}

#[derive(Debug)]
struct WaveState {
    started: Instant,
    /// Units (solo ops / fused groups) still in flight.
    remaining: usize,
    predicted_makespan_s: f64,
}

#[derive(Debug, Default)]
struct SchedState {
    next_id: u64,
    next_wave: u64,
    tickets: HashMap<u64, Ticket>,
    /// FIFO of `Queued` ticket ids — admission order is submission order.
    queue: VecDeque<u64>,
    waves: HashMap<u64, WaveState>,
    in_flight_threads: usize,
    max_in_flight_threads: usize,
    max_queue_depth: usize,
    waves_completed: u64,
    predicted_makespan_s: f64,
    measured_makespan_s: f64,
}

/// One co-planned dispatch unit under construction: a solo op or a fused
/// same-shape group, with its allocation ladder.
struct Unit {
    /// Ticket ids; the first is the solo op or the fusion leader.
    ids: Vec<u64>,
    /// `(group plan, predicted seconds, total threads)` ascending rows.
    rows: Vec<(ExecutionPlan, f64, usize)>,
    /// Currently selected row.
    idx: usize,
}

impl Unit {
    fn selected(&self) -> &(ExecutionPlan, f64, usize) {
        &self.rows[self.idx]
    }
}

/// The admission-controlled co-scheduling front-end over an
/// [`AdsalaService`]. See the module docs for the full lifecycle.
#[derive(Debug)]
pub struct ServiceScheduler {
    service: Arc<AdsalaService>,
    max_queue: usize,
    thread_budget: usize,
    fuse: bool,
    admission_timeout: Option<Duration>,
    state: Mutex<SchedState>,
    /// Signalled on any ticket phase change.
    work: Condvar,
    /// Signalled when the admission queue gains room.
    space: Condvar,
    /// Memo of predicted-runtime curves per `(shape, cap)`, tagged with
    /// the service generation it was computed under: a bundle hot-swap
    /// invalidates every curve, exactly like the service's decision memo.
    curves: Mutex<TaggedCurves>,
    submitted: AtomicU64,
    completed: AtomicU64,
    waves: AtomicU64,
    fused_ops: AtomicU64,
    admission_waits: AtomicU64,
    admission_timeouts: AtomicU64,
    shed_expired: AtomicU64,
    plan_downgrades: AtomicU64,
}

/// Bound on the scheduler-local curve memo (entries, then wholesale
/// clear — curves are cheap to recompute and shape churn is rare).
const CURVE_CACHE_CAP: usize = 512;

impl ServiceScheduler {
    /// Wrap `service` with default tunables (budget = pool workers).
    pub fn new(service: Arc<AdsalaService>) -> Self {
        Self::with_config(service, SchedulerConfig::default())
    }

    /// Wrap `service` with explicit tunables.
    pub fn with_config(service: Arc<AdsalaService>, cfg: SchedulerConfig) -> Self {
        let thread_budget = if cfg.thread_budget == 0 {
            service.pool_workers()
        } else {
            cfg.thread_budget.min(service.pool_workers())
        };
        Self {
            service,
            max_queue: cfg.max_queue.max(1),
            thread_budget: thread_budget.max(1),
            fuse: cfg.fuse,
            admission_timeout: cfg.admission_timeout,
            state: Mutex::new(SchedState::default()),
            work: Condvar::new(),
            space: Condvar::new(),
            curves: Mutex::new((0, HashMap::new())),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            waves: AtomicU64::new(0),
            fused_ops: AtomicU64::new(0),
            admission_waits: AtomicU64::new(0),
            admission_timeouts: AtomicU64::new(0),
            shed_expired: AtomicU64::new(0),
            plan_downgrades: AtomicU64::new(0),
        }
    }

    /// The wrapped service.
    pub fn service(&self) -> &AdsalaService {
        &self.service
    }

    /// The planner's worker budget.
    pub fn thread_budget(&self) -> usize {
        self.thread_budget
    }

    /// Submit one op and block until it has been co-planned and executed.
    /// Safe to call from any number of client threads.
    pub fn submit<T: Element>(
        &self,
        req: &mut OpRequest<'_, T>,
    ) -> Result<ScheduledRun, AdsalaError> {
        self.submit_with(req, RunOptions::default())
    }

    /// Like [`ServiceScheduler::submit`] but never waits past `timeout`:
    /// if the op is still unadmitted (at the gate or queued) when the
    /// timeout elapses, it is shed and the call returns
    /// [`AdsalaError::Timeout`] with the output buffer untouched. An op
    /// admitted in time runs to completion even if execution outlasts
    /// the timeout — admission is the commit point.
    pub fn submit_within<T: Element>(
        &self,
        req: &mut OpRequest<'_, T>,
        timeout: Duration,
    ) -> Result<ScheduledRun, AdsalaError> {
        self.submit_with(req, RunOptions::default().with_deadline(Instant::now() + timeout))
    }

    /// Like [`ServiceScheduler::submit`] with per-call options. The
    /// host cap bounds this op's share of the *joint* assignment: the
    /// planner only considers curve rows at or below the cap, so the
    /// op's allocation never exceeds it — before, during, or after the
    /// LPT upgrades.
    pub fn submit_with<T: Element>(
        &self,
        req: &mut OpRequest<'_, T>,
        opts: RunOptions,
    ) -> Result<ScheduledRun, AdsalaError> {
        req.validate()?;
        let shape = req.shape();
        let cap = self.normalised_cap(opts.thread_cap());
        let curve = self.curve_for(shape, cap);
        let fuse = if self.fuse { req.fuse_key().map(|k| (k, cap)) } else { None };
        // Erase the request so the planner and a fusion leader can reach
        // it; we park below until `Done`, upholding ErasedReq's contract.
        let slot = ErasedReq { ptr: req as *mut OpRequest<'_, T> as *mut () };
        // The configured admission timeout tightens (never loosens) the
        // call's own deadline at the gate.
        let gate_deadline = match self.admission_timeout.map(|t| Instant::now() + t) {
            Some(g) => Some(opts.deadline.map_or(g, |d| d.min(g))),
            None => opts.deadline,
        };

        let mut st = self.state.lock();
        if st.queue.len() >= self.max_queue {
            self.admission_waits.fetch_add(1, Ordering::Relaxed);
            while st.queue.len() >= self.max_queue {
                if self.wait_until(&self.space, &mut st, gate_deadline)
                    && st.queue.len() >= self.max_queue
                {
                    self.admission_timeouts.fetch_add(1, Ordering::Relaxed);
                    return Err(AdsalaError::Timeout(format!(
                        "{} refused: admission queue still full at the deadline",
                        shape.routine
                    )));
                }
            }
        }
        let id = st.next_id;
        st.next_id += 1;
        st.tickets.insert(
            id,
            Ticket { fuse, curve, slot, phase: Phase::Queued, deadline: opts.deadline },
        );
        st.queue.push_back(id);
        st.max_queue_depth = st.max_queue_depth.max(st.queue.len());
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.try_admit(&mut st);

        loop {
            match &st.tickets.get(&id).expect("live ticket").phase {
                Phase::Queued => {
                    if self.wait_until(&self.work, &mut st, opts.deadline)
                        && matches!(st.tickets.get(&id).expect("live ticket").phase, Phase::Queued)
                    {
                        // The planner hasn't run since the deadline
                        // passed: shed ourselves. Safe under the state
                        // lock — nothing else holds our pointer while we
                        // are Queued.
                        st.queue.retain(|&q| q != id);
                        st.tickets.remove(&id);
                        self.shed_expired.fetch_add(1, Ordering::Relaxed);
                        self.space.notify_all();
                        return Err(AdsalaError::Timeout(format!(
                            "{} shed: deadline passed while queued",
                            shape.routine
                        )));
                    }
                }
                // An admitted member is committed: its leader holds the
                // request pointer, so it parks unconditionally until the
                // leader fills in its result.
                Phase::Admitted(Admission::Member) => self.work.wait(&mut st),
                _ => break,
            }
        }

        let admission = match &st.tickets.get(&id).expect("live ticket").phase {
            Phase::Done { .. } => {
                // A fusion leader already ran this op and filled the result.
                return Ok(self.take_done(&mut st, id));
            }
            Phase::Shed => {
                st.tickets.remove(&id);
                return Err(AdsalaError::Timeout(format!(
                    "{} shed: deadline passed while queued",
                    shape.routine
                )));
            }
            Phase::Failed { .. } => {
                let Some(Ticket { phase: Phase::Failed { routine, detail }, .. }) =
                    st.tickets.remove(&id)
                else {
                    unreachable!("phase just matched Failed")
                };
                return Err(AdsalaError::Execution { routine, detail });
            }
            Phase::Admitted(a) => a.clone(),
            Phase::Queued => unreachable!("wait loop exits only on Admitted/Done/Shed/Failed"),
        };

        match admission {
            Admission::Solo { plan, predicted_s, threads, wave } => {
                drop(st);
                let outcome = match self.service.execute_guarded(req, &plan) {
                    Ok(mut stats) => {
                        stats.predicted_ns = crate::service::predicted_ns(predicted_s);
                        // The scheduler executes on the pool directly
                        // (bypassing service.run), so it must feed the
                        // feedback loop itself.
                        self.service.record_algorithm(stats.exec.algorithm);
                        self.service.observe(shape, &plan, predicted_s, stats.exec.wall_ns);
                        Ok(stats)
                    }
                    // Kernel panic: the same isolate → heal → degraded
                    // retry the service applies (recovered ops skip
                    // `observe`; the prediction no longer describes what
                    // ran).
                    Err(detail) => self.service.recover_from_panic(req, detail, opts.deadline),
                };
                if let Ok(stats) = &outcome {
                    if stats.plan_degraded {
                        self.plan_downgrades.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // The unit completes whatever the outcome: a panicked op
                // must still return its threads to the budget, or the
                // queue wedges behind a phantom allocation.
                let mut st = self.state.lock();
                st.tickets.remove(&id);
                self.complete_unit(&mut st, wave, threads);
                let stats = outcome?;
                self.completed.fetch_add(1, Ordering::Relaxed);
                Ok(ScheduledRun { plan, predicted_runtime_s: predicted_s, fused: false, stats })
            }
            Admission::Leader { plan, predicted_s, threads, wave, members } => {
                let member_ptrs: Vec<*mut ()> = members
                    .iter()
                    .map(|m| st.tickets.get(m).expect("member parked").slot.ptr)
                    .collect();
                drop(st);
                // SAFETY: every member shares this unit's FuseKey, whose
                // precision pins the element type to T; the pointees are
                // OpRequests parked in their owners' submit frames until
                // we mark them Done below (ErasedReq's contract).
                let mut refs: Vec<&mut OpRequest<'_, T>> = Vec::with_capacity(1 + members.len());
                refs.push(req);
                for p in &member_ptrs {
                    refs.push(unsafe { &mut *(*p as *mut OpRequest<'_, T>) });
                }
                let batch = catch_unwind(AssertUnwindSafe(|| {
                    OpRequest::execute_fused_refs_validated(&mut refs, self.service.pool(), &plan)
                }))
                .map_err(crate::service::panic_message);
                let all: Vec<Result<OpStats, (Routine, String)>> = match batch {
                    Ok(mut all) => {
                        for s in &mut all {
                            s.predicted_ns = crate::service::predicted_ns(predicted_s);
                            // Every fused member shares the unit's shape
                            // and plan; each contributes its own
                            // measurement.
                            self.service.record_algorithm(s.exec.algorithm);
                            self.service.observe(shape, &plan, predicted_s, s.exec.wall_ns);
                        }
                        all.into_iter().map(Ok).collect()
                    }
                    Err(detail) => {
                        // The whole gang unwound together. Isolate, sweep
                        // the pool whole, and retry member-by-member on
                        // the degraded serial plan, inline on this thread
                        // — no gang, no barrier, nothing shared left to
                        // poison a second time.
                        self.service.note_panic_caught();
                        let degraded = AdsalaService::degraded_plan();
                        refs.iter_mut()
                            .map(|r| {
                                let routine = r.routine();
                                if !r.is_idempotent() {
                                    return Err((
                                        routine,
                                        format!(
                                            "{detail} (not retried: beta != 0 makes a rerun \
                                             unsound)"
                                        ),
                                    ));
                                }
                                self.service.note_degraded_retry();
                                match self.service.execute_guarded(r, &degraded) {
                                    Ok(mut s) => {
                                        s.plan_degraded = true;
                                        self.service.record_algorithm(s.exec.algorithm);
                                        Ok(s)
                                    }
                                    Err(d2) => {
                                        self.service.pool().heal();
                                        Err((
                                            routine,
                                            format!("{detail}; degraded retry also failed: {d2}"),
                                        ))
                                    }
                                }
                            })
                            .collect()
                    }
                };
                drop(refs);
                let degraded =
                    all.iter().filter(|r| matches!(r, Ok(s) if s.plan_degraded)).count() as u64;
                if degraded > 0 {
                    self.plan_downgrades.fetch_add(degraded, Ordering::Relaxed);
                }
                let failures = all.iter().filter(|r| r.is_err()).count() as u64;
                if failures > 0 {
                    self.service.note_execution_failures(failures);
                }
                self.fused_ops.fetch_add(all.len() as u64 - failures, Ordering::Relaxed);
                let mut st = self.state.lock();
                for (m, res) in members.iter().zip(all.iter().skip(1)) {
                    let t = st.tickets.get_mut(m).expect("member parked");
                    t.phase = match res {
                        Ok(s) => Phase::Done { plan, predicted_s, fused: true, stats: *s },
                        Err((routine, detail)) => {
                            Phase::Failed { routine: *routine, detail: detail.clone() }
                        }
                    };
                }
                st.tickets.remove(&id);
                self.complete_unit(&mut st, wave, threads);
                self.work.notify_all();
                match &all[0] {
                    Ok(stats) => {
                        self.completed.fetch_add(1, Ordering::Relaxed);
                        Ok(ScheduledRun {
                            plan,
                            predicted_runtime_s: predicted_s,
                            fused: true,
                            stats: *stats,
                        })
                    }
                    Err((routine, detail)) => {
                        Err(AdsalaError::Execution { routine: *routine, detail: detail.clone() })
                    }
                }
            }
            Admission::Member => unreachable!("members only leave the wait loop via Done"),
        }
    }

    /// The scheduler's single wait primitive: park on `cv` until
    /// notified, or until `deadline` passes (`None` parks indefinitely —
    /// plain [`ServiceScheduler::submit`] is exactly the `None` case).
    /// Returns whether the deadline has passed on wake; the caller
    /// re-checks its predicate either way (condvar waits are spurious).
    fn wait_until(
        &self,
        cv: &Condvar,
        st: &mut MutexGuard<'_, SchedState>,
        deadline: Option<Instant>,
    ) -> bool {
        match deadline {
            None => {
                cv.wait(st);
                false
            }
            Some(d) => {
                let now = Instant::now();
                if now >= d {
                    return true;
                }
                cv.wait_for(st, d - now);
                Instant::now() >= d
            }
        }
    }

    /// Snapshot every scheduler counter plus the wrapped service's.
    pub fn stats(&self) -> SchedulerStats {
        let st = self.state.lock();
        SchedulerStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            waves: self.waves.load(Ordering::Relaxed),
            waves_completed: st.waves_completed,
            fused_ops: self.fused_ops.load(Ordering::Relaxed),
            admission_waits: self.admission_waits.load(Ordering::Relaxed),
            admission_timeouts: self.admission_timeouts.load(Ordering::Relaxed),
            shed_expired: self.shed_expired.load(Ordering::Relaxed),
            plan_downgrades: self.plan_downgrades.load(Ordering::Relaxed),
            queue_depth: st.queue.len(),
            max_queue_depth: st.max_queue_depth,
            in_flight_threads: st.in_flight_threads,
            max_in_flight_threads: st.max_in_flight_threads,
            thread_budget: self.thread_budget,
            predicted_makespan_s: st.predicted_makespan_s,
            measured_makespan_s: st.measured_makespan_s,
            service: self.service.stats(),
        }
    }

    fn normalised_cap(&self, cap: u32) -> u32 {
        let budget = u32::try_from(self.thread_budget).unwrap_or(u32::MAX);
        cap.min(budget).clamp(1, self.service.bundle().max_candidate_threads())
    }

    fn curve_for(&self, shape: OpShape, cap: u32) -> Arc<Vec<(ExecutionPlan, f64)>> {
        let key = (shape, cap);
        // Generation before bundle, mirroring the service's swap
        // protocol: a curve computed against a retired bundle may be
        // memoised under its own (old) tag but can never pollute the
        // post-swap memo.
        let generation = self.service.generation();
        {
            let mut memo = self.curves.lock();
            if memo.0 != generation {
                memo.0 = generation;
                memo.1.clear();
            } else if let Some(curve) = memo.1.get(&key) {
                return Arc::clone(curve);
            }
        }
        let curve = Arc::new(self.service.bundle().decide_op_curve(shape, cap));
        assert!(!curve.is_empty(), "plan grids always hold at least one thread count");
        let mut memo = self.curves.lock();
        if memo.0 == generation {
            if memo.1.len() >= CURVE_CACHE_CAP {
                memo.1.clear();
            }
            memo.1.insert(key, Arc::clone(&curve));
        }
        curve
    }

    /// Remove a finished ticket and hand its result back (caller holds
    /// the lock via `st`).
    fn take_done(&self, st: &mut SchedState, id: u64) -> ScheduledRun {
        let ticket = st.tickets.remove(&id).expect("live ticket");
        let Phase::Done { plan, predicted_s, fused, stats } = ticket.phase else {
            unreachable!("take_done called on a non-Done ticket")
        };
        self.completed.fetch_add(1, Ordering::Relaxed);
        ScheduledRun { plan, predicted_runtime_s: predicted_s, fused, stats }
    }

    /// One unit (solo op or fused batch) finished: return its threads to
    /// the budget, settle wave accounting, and re-plan the queue.
    fn complete_unit(&self, st: &mut SchedState, wave: u64, threads: usize) {
        st.in_flight_threads -= threads;
        if let Some(w) = st.waves.get_mut(&wave) {
            w.remaining -= 1;
            if w.remaining == 0 {
                let w = st.waves.remove(&wave).expect("wave live");
                st.predicted_makespan_s += w.predicted_makespan_s;
                st.measured_makespan_s += w.started.elapsed().as_secs_f64();
                st.waves_completed += 1;
            }
        }
        self.try_admit(st);
        self.work.notify_all();
    }

    /// Admit as many FIFO waves as the free budget allows. Strict FIFO:
    /// the queue head is never bypassed, which is the starvation-freedom
    /// guarantee — a head op that doesn't fit simply waits for in-flight
    /// units to drain.
    fn try_admit(&self, st: &mut SchedState) {
        self.shed_expired_queued(st);
        loop {
            let avail = self.thread_budget - st.in_flight_threads;
            let Some(units) = self.plan_wave(st, avail) else { return };

            let wave = st.next_wave;
            st.next_wave += 1;
            let admitted: usize = units.iter().map(|u| u.ids.len()).sum();
            let assigned: usize = units.iter().map(|u| u.selected().2).sum();
            let makespan = units.iter().map(|u| u.selected().1).fold(0.0f64, f64::max);
            st.queue.drain(..admitted);
            st.in_flight_threads += assigned;
            st.max_in_flight_threads = st.max_in_flight_threads.max(st.in_flight_threads);
            st.waves.insert(
                wave,
                WaveState {
                    started: Instant::now(),
                    remaining: units.len(),
                    predicted_makespan_s: makespan,
                },
            );
            self.waves.fetch_add(1, Ordering::Relaxed);

            for unit in &units {
                let &(plan, predicted_s, threads) = unit.selected();
                let (leader, members) = unit.ids.split_first().expect("units are non-empty");
                let leader_phase = if members.is_empty() {
                    Phase::Admitted(Admission::Solo { plan, predicted_s, threads, wave })
                } else {
                    Phase::Admitted(Admission::Leader {
                        plan,
                        predicted_s,
                        threads,
                        wave,
                        members: members.to_vec(),
                    })
                };
                st.tickets.get_mut(leader).expect("live ticket").phase = leader_phase;
                for m in members {
                    st.tickets.get_mut(m).expect("live ticket").phase =
                        Phase::Admitted(Admission::Member);
                }
            }

            self.work.notify_all();
            self.space.notify_all();
        }
    }

    /// Drop every queued ticket whose deadline has passed, before the
    /// planner considers the queue. Shedding marks the ticket
    /// [`Phase::Shed`] and wakes its parked owner, who surfaces
    /// [`AdsalaError::Timeout`] — a counted refusal, never a silent
    /// drop. Admitted tickets are out of the queue and thus never shed.
    fn shed_expired_queued(&self, st: &mut SchedState) {
        let now = Instant::now();
        let SchedState { queue, tickets, .. } = st;
        let before = queue.len();
        queue.retain(|id| {
            let ticket = tickets.get_mut(id).expect("queued tickets are live");
            if ticket.deadline.is_some_and(|d| now >= d) {
                ticket.phase = Phase::Shed;
                false
            } else {
                true
            }
        });
        let shed = before - queue.len();
        if shed > 0 {
            self.shed_expired.fetch_add(shed as u64, Ordering::Relaxed);
            self.work.notify_all();
            self.space.notify_all();
        }
    }

    /// Plan one wave from the queue's FIFO prefix under `avail` threads:
    /// group fusable neighbours into units, seat every unit at its
    /// narrowest row, then spend the leftover budget on LPT upgrades.
    /// Returns `None` when nothing is admissible (empty queue, or the
    /// head's narrowest plan doesn't fit).
    fn plan_wave(&self, st: &SchedState, avail: usize) -> Option<Vec<Unit>> {
        let mut units: Vec<Unit> = Vec::new();
        // Fusion class → unit index, for this wave only.
        let mut classes: HashMap<(FuseKey, u32), usize> = HashMap::new();
        let mut used = 0usize;

        for &id in &st.queue {
            let ticket = &st.tickets[&id];
            let min_threads = ticket.curve[0].0.threads as usize;
            if let Some(class) = ticket.fuse {
                if let Some(&u) = classes.get(&class) {
                    // Joining an existing unit costs one more member's
                    // share at every row.
                    if used + min_threads > avail {
                        break;
                    }
                    used += min_threads;
                    units[u].ids.push(id);
                    let n = units[u].ids.len();
                    for (row, &(plan, pred)) in units[u].rows.iter_mut().zip(ticket.curve.iter()) {
                        let total = plan.threads as usize * n;
                        *row = (plan.with_thread_count(total), pred, total);
                    }
                    continue;
                }
                if used + min_threads > avail {
                    break;
                }
                used += min_threads;
                classes.insert(class, units.len());
                units.push(Unit {
                    ids: vec![id],
                    rows: ticket
                        .curve
                        .iter()
                        .map(|&(plan, pred)| (plan, pred, plan.threads as usize))
                        .collect(),
                    idx: 0,
                });
            } else {
                if used + min_threads > avail {
                    break;
                }
                used += min_threads;
                units.push(Unit {
                    ids: vec![id],
                    rows: ticket
                        .curve
                        .iter()
                        .map(|&(plan, pred)| (plan, pred, plan.threads as usize))
                        .collect(),
                    idx: 0,
                });
            }
        }
        if units.is_empty() {
            return None;
        }

        // Greedy LPT: repeatedly widen the predicted-makespan bottleneck,
        // while the upgrade fits the budget and the model predicts it
        // helps. Upgrades never pass an op's capped curve, so per-op host
        // caps bound the joint assignment by construction.
        let mut remaining = avail - used;
        loop {
            let mut pick: Option<(usize, f64)> = None;
            for (u, unit) in units.iter().enumerate() {
                if unit.idx + 1 >= unit.rows.len() {
                    continue;
                }
                let cur = unit.selected();
                let next = &unit.rows[unit.idx + 1];
                let cost = next.2 - cur.2;
                if cost > remaining || next.1 >= cur.1 {
                    continue;
                }
                if pick.map_or(true, |(_, p)| cur.1 > p) {
                    pick = Some((u, cur.1));
                }
            }
            let Some((u, _)) = pick else { break };
            remaining -= units[u].rows[units[u].idx + 1].2 - units[u].selected().2;
            units[u].idx += 1;
        }
        Some(units)
    }
}

// Clients on many threads share the scheduler by reference.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = _assert_send_sync::<ServiceScheduler>();

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::tests::quick_bundle;
    use crate::service::ServiceConfig;
    use adsala_gemm::dispatch::{GemmArgs, Routine};

    fn scheduler(workers: usize, cfg: SchedulerConfig) -> ServiceScheduler {
        let service = Arc::new(AdsalaService::with_config(
            quick_bundle().into_shared(),
            ServiceConfig { pool_workers: workers, ..ServiceConfig::default() },
        ));
        ServiceScheduler::with_config(service, cfg)
    }

    fn fill(n: usize, seed: u64) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                ((s % 2000) as f32 - 1000.0) / 350.0
            })
            .collect()
    }

    #[test]
    fn single_op_is_admitted_and_correct() {
        let sched = scheduler(4, SchedulerConfig::default());
        let (m, n, k) = (48usize, 40usize, 24usize);
        let a = fill(m * k, 1);
        let b = fill(k * n, 2);
        let mut c = vec![0.0f32; m * n];
        let mut c_ref = vec![0.0f32; m * n];
        let mut req: OpRequest<'_, f32> =
            GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
        let run = sched.submit(&mut req).unwrap();
        assert_eq!(run.stats.routine, Routine::Gemm);
        assert!(run.plan.threads >= 1);
        assert!(run.predicted_runtime_s > 0.0);
        assert!(!run.fused, "a lone op has nothing to fuse with");
        adsala_gemm::naive::naive_gemm(
            adsala_gemm::Transpose::No,
            adsala_gemm::Transpose::No,
            m,
            n,
            k,
            1.0f32,
            &a,
            k,
            &b,
            n,
            0.0,
            &mut c_ref,
            n,
        );
        for (x, y) in c.iter().zip(&c_ref) {
            assert!((x - y).abs() <= 1e-3 * (1.0 + y.abs()));
        }
        let stats = sched.stats();
        assert_eq!((stats.submitted, stats.completed), (1, 1));
        assert_eq!(stats.waves, 1);
        assert_eq!(stats.waves_completed, 1);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.in_flight_threads, 0);
        assert!(stats.predicted_makespan_s > 0.0);
        assert!(stats.measured_makespan_s > 0.0);
    }

    #[test]
    fn joint_assignment_never_exceeds_the_budget() {
        let sched = Arc::new(scheduler(4, SchedulerConfig::default()));
        let clients = 8usize;
        let (m, n, k) = (96usize, 96usize, 48usize);
        std::thread::scope(|scope| {
            for t in 0..clients {
                let sched = Arc::clone(&sched);
                scope.spawn(move || {
                    let a = fill(m * k, t as u64 + 10);
                    let b = fill(k * n, t as u64 + 60);
                    let mut c = vec![0.0f32; m * n];
                    for _ in 0..4 {
                        let mut req: OpRequest<'_, f32> =
                            GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n)
                                .into();
                        let run = sched.submit(&mut req).unwrap();
                        assert!(run.plan.threads as usize <= sched.thread_budget());
                    }
                });
            }
        });
        let stats = sched.stats();
        assert_eq!(stats.submitted, (clients * 4) as u64);
        assert_eq!(stats.completed, stats.submitted);
        assert!(
            stats.max_in_flight_threads <= stats.thread_budget,
            "joint assignment exceeded the budget: {stats:?}"
        );
        assert_eq!(stats.in_flight_threads, 0);
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn same_shape_shared_b_clients_fuse() {
        // Two clients ship the same shape against the same B. Force the
        // wave to see both: a tiny budget makes the first wave one op
        // wide only if they race in; instead park client 0's op behind a
        // queue the test controls by submitting from two threads and
        // letting the scheduler group whatever lands in one wave. Fusion
        // is opportunistic, so assert on the aggregate: every result is
        // correct and at least the counters are consistent.
        let sched = Arc::new(scheduler(4, SchedulerConfig::default()));
        let (m, n, k) = (64usize, 48usize, 32usize);
        let b = fill(k * n, 7);
        let clients = 6usize;
        let reps = 8usize;
        std::thread::scope(|scope| {
            for t in 0..clients {
                let sched = Arc::clone(&sched);
                let b = &b;
                scope.spawn(move || {
                    let a = fill(m * k, 100 + t as u64);
                    let mut c = vec![0.0f32; m * n];
                    let mut c_ref = vec![0.0f32; m * n];
                    adsala_gemm::naive::naive_gemm(
                        adsala_gemm::Transpose::No,
                        adsala_gemm::Transpose::No,
                        m,
                        n,
                        k,
                        1.0f32,
                        &a,
                        k,
                        b,
                        n,
                        0.0,
                        &mut c_ref,
                        n,
                    );
                    for _ in 0..reps {
                        c.fill(0.0);
                        let mut req: OpRequest<'_, f32> =
                            GemmArgs::untransposed(m, n, k, 1.0, &a, k, b, n, 0.0, &mut c, n)
                                .into();
                        let run = sched.submit(&mut req).unwrap();
                        assert_eq!(run.stats.routine, Routine::Gemm);
                        for (x, y) in c.iter().zip(&c_ref) {
                            assert!((x - y).abs() <= 1e-3 * (1.0 + y.abs()));
                        }
                    }
                });
            }
        });
        let stats = sched.stats();
        assert_eq!(stats.completed, (clients * reps) as u64);
        assert_eq!(stats.gang_fallbacks(), 0, "budgeted waves must never lose a gang: {stats:?}");
    }

    #[test]
    fn host_cap_bounds_the_joint_share() {
        let sched = scheduler(4, SchedulerConfig::default());
        let (m, n, k) = (256usize, 256usize, 32usize);
        let a = fill(m * k, 3);
        let b = fill(k * n, 4);
        let mut c = vec![0.0f32; m * n];
        let mut req: OpRequest<'_, f32> =
            GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
        let run = sched.submit_with(&mut req, RunOptions::with_host_cap(2)).unwrap();
        assert!(run.plan.threads <= 2, "{run:?}");
        assert!(run.stats.exec.threads_used <= 2);
    }

    #[test]
    fn admission_queue_applies_back_pressure() {
        // max_queue = 1 with a 1-thread budget: while one op runs, at
        // most one more may queue; further submits must block (and be
        // counted) rather than pile up.
        let sched = Arc::new(scheduler(
            2,
            SchedulerConfig { max_queue: 1, thread_budget: 1, ..SchedulerConfig::default() },
        ));
        let clients = 4usize;
        std::thread::scope(|scope| {
            for t in 0..clients {
                let sched = Arc::clone(&sched);
                scope.spawn(move || {
                    let (m, n, k) = (64usize, 64usize, 32usize);
                    let a = fill(m * k, 40 + t as u64);
                    let b = fill(k * n, 80 + t as u64);
                    let mut c = vec![0.0f32; m * n];
                    for _ in 0..3 {
                        let mut req: OpRequest<'_, f32> =
                            GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n)
                                .into();
                        sched.submit(&mut req).unwrap();
                    }
                });
            }
        });
        let stats = sched.stats();
        assert_eq!(stats.completed, (clients * 3) as u64);
        assert!(stats.max_queue_depth <= 1, "{stats:?}");
        assert!(stats.max_in_flight_threads <= 1, "{stats:?}");
    }
}
