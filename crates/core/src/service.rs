//! The shared, concurrent ADSALA serving layer — layer 3 of the stack.
//!
//! [`AdsalaService`] is what the ROADMAP's "serve heavy traffic" goal
//! needs and the paper's single-client C++ class is not: a `Send + Sync`
//! handle that any number of client threads can call through a shared
//! reference. It composes the two layers below it —
//!
//! * an `Arc`-shared immutable [`ArtifactBundle`] for model sweeps,
//! * a lock-striped [`DecisionCache`] for memoisation —
//!
//! and owns one persistent [`ThreadPool`]. Every GEMM executes through
//! [`adsala_gemm::gemm_with_stats_pooled`] on that pool, so the service
//! path never pays the per-call OS-thread spawn/join the paper's profiler
//! analysis (§VI-D) identifies as the dominant overhead for small shapes.
//!
//! Diagnostics are atomics: `evaluations` counts actual model sweeps
//! (concurrent racing misses may sweep the same shape twice — both count),
//! and [`AdsalaService::cache_stats`] snapshots the memo counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use adsala_gemm::gemm::{gemm_with_stats_pooled, GemmCall};
use adsala_gemm::{GemmStats, ThreadPool};

use crate::bundle::{ArtifactBundle, ThreadDecision};
use crate::cache::{CacheStats, DecisionCache, DEFAULT_CACHE_CAPACITY, DEFAULT_CACHE_SHARDS};

/// Tunables for [`AdsalaService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads in the persistent GEMM pool; 0 means one per
    /// available hardware thread.
    pub pool_workers: usize,
    /// Lock stripes in the decision cache.
    pub cache_shards: usize,
    /// Maximum resident decisions across all stripes.
    pub cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            pool_workers: 0,
            cache_shards: DEFAULT_CACHE_SHARDS,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
        }
    }
}

/// A thread-safe ADSALA GEMM server: shared artefacts, striped memo,
/// persistent execution pool.
#[derive(Debug)]
pub struct AdsalaService {
    bundle: Arc<ArtifactBundle>,
    cache: DecisionCache,
    pool: ThreadPool,
    /// Model sweeps performed (memo hits don't count).
    evaluations: AtomicU64,
}

impl AdsalaService {
    /// Build a service with default tunables.
    pub fn new(bundle: Arc<ArtifactBundle>) -> Self {
        Self::with_config(bundle, ServiceConfig::default())
    }

    /// Build a service with explicit pool/cache tunables.
    pub fn with_config(bundle: Arc<ArtifactBundle>, cfg: ServiceConfig) -> Self {
        let pool = if cfg.pool_workers == 0 {
            ThreadPool::with_host_parallelism()
        } else {
            ThreadPool::new(cfg.pool_workers)
        };
        Self {
            bundle,
            cache: DecisionCache::new(cfg.cache_shards, cfg.cache_capacity),
            pool,
            evaluations: AtomicU64::new(0),
        }
    }

    /// The shared artefact bundle this service decides with.
    pub fn bundle(&self) -> &Arc<ArtifactBundle> {
        &self.bundle
    }

    /// Candidate thread counts swept per decision.
    pub fn candidates(&self) -> &[u32] {
        &self.bundle.candidates
    }

    /// Worker threads in the persistent execution pool.
    pub fn pool_workers(&self) -> usize {
        self.pool.workers()
    }

    /// Pick the thread count for an `(m, k, n)` GEMM: memo first, model
    /// sweep on a miss. Callable concurrently through `&self`; equal
    /// shapes always yield equal `threads` because both the cache and the
    /// bundle are deterministic.
    pub fn select_threads(&self, m: u64, k: u64, n: u64) -> ThreadDecision {
        let key = (m, k, n);
        if let Some(decision) = self.cache.get(key) {
            return decision;
        }
        let decision = self.bundle.decide(m, k, n);
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        self.cache.insert(key, decision);
        decision
    }

    /// Run a single-precision GEMM with the ML-selected thread count
    /// (clamped to `host_max_threads`), executing on the persistent pool.
    ///
    /// Matrices are row-major with the given leading dimensions; computes
    /// `C ← α·A·B + β·C`. Returns the decision and the execution stats.
    #[allow(clippy::too_many_arguments)]
    pub fn sgemm(
        &self,
        m: usize,
        n: usize,
        k: usize,
        alpha: f32,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        beta: f32,
        c: &mut [f32],
        ldc: usize,
        host_max_threads: u32,
    ) -> (ThreadDecision, GemmStats) {
        let decision = self.select_threads(m as u64, k as u64, n as u64);
        let threads = decision.threads.clamp(1, host_max_threads.max(1)) as usize;
        let call = GemmCall::new(m, n, k, threads);
        let stats = gemm_with_stats_pooled(&self.pool, &call, alpha, a, lda, b, ldb, beta, c, ldc);
        (decision, stats)
    }

    /// Model sweeps performed so far (accurate under concurrency).
    pub fn evaluations(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }

    /// Snapshot the decision-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Forget all memoised decisions (e.g. after a machine change). The
    /// counters and the evaluation count are preserved.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }
}

// The whole point of the service layer: shareable across client threads.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = _assert_send_sync::<AdsalaService>();

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::tests::quick_bundle;

    fn service() -> AdsalaService {
        AdsalaService::with_config(
            quick_bundle().into_shared(),
            ServiceConfig { pool_workers: 4, ..ServiceConfig::default() },
        )
    }

    #[test]
    fn decisions_memoise_across_calls() {
        let svc = service();
        let first = svc.select_threads(128, 512, 128);
        let second = svc.select_threads(128, 512, 128);
        assert!(!first.memoised);
        assert!(second.memoised);
        assert_eq!(first.threads, second.threads);
        assert_eq!(svc.evaluations(), 1, "memo hit must not re-sweep");
        let stats = svc.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn sgemm_runs_on_pool_and_is_correct() {
        let svc = service();
        let (m, k, n) = (33usize, 17usize, 29usize);
        let a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32 - 3.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32 * 0.5).collect();
        let mut c = vec![0.0f32; m * n];
        let (decision, stats) = svc.sgemm(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n, 4);
        assert!(svc.candidates().contains(&decision.threads));
        assert!(stats.threads_used >= 1 && stats.threads_used <= 4);
        let mut c_ref = vec![0.0f32; m * n];
        adsala_gemm::naive::naive_gemm(
            adsala_gemm::Transpose::No,
            adsala_gemm::Transpose::No,
            m,
            n,
            k,
            1.0f32,
            &a,
            k,
            &b,
            n,
            0.0,
            &mut c_ref,
            n,
        );
        for (x, y) in c.iter().zip(&c_ref) {
            assert!((x - y).abs() <= 1e-3 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn clear_cache_forces_reevaluation() {
        let svc = service();
        svc.select_threads(100, 100, 100);
        svc.clear_cache();
        let d = svc.select_threads(100, 100, 100);
        assert!(!d.memoised);
        assert_eq!(svc.evaluations(), 2);
    }

    #[test]
    fn shared_bundle_feeds_many_services() {
        let bundle = quick_bundle().into_shared();
        let a = AdsalaService::with_config(
            Arc::clone(&bundle),
            ServiceConfig { pool_workers: 1, ..ServiceConfig::default() },
        );
        let b = AdsalaService::with_config(
            bundle,
            ServiceConfig { pool_workers: 1, ..ServiceConfig::default() },
        );
        assert_eq!(a.select_threads(64, 2048, 64).threads, b.select_threads(64, 2048, 64).threads);
    }
}
