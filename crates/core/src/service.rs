//! The shared, concurrent ADSALA serving layer — layer 3 of the stack.
//!
//! [`AdsalaService`] is what the ROADMAP's "serve heavy traffic" goal
//! needs and the paper's single-client C++ class is not: a `Send + Sync`
//! handle that any number of client threads can call through a shared
//! reference. It composes the two layers below it —
//!
//! * an `Arc`-shared immutable [`ArtifactBundle`] for model sweeps,
//! * a lock-striped [`DecisionCache`] for memoisation —
//!
//! and owns one persistent [`ThreadPool`]. Every request executes through
//! the pooled kernel drivers on that pool, so the service path never pays
//! the per-call OS-thread spawn/join the paper's profiler analysis
//! (§VI-D) identifies as the dominant overhead for small shapes. The pool
//! also owns the packing [`adsala_gemm::Workspace`]: workers reuse warm
//! per-worker arenas (zero packing-path heap allocations at steady
//! state, observable via [`AdsalaService::workspace_stats`]) and
//! row-split GEMM grids pack each B panel once into a shared region
//! instead of once per row group — the two copy/sync costs of Table VII
//! this layer eliminates.
//!
//! The serving surface is routine- and precision-generic: build an
//! [`OpRequest`] from a typed descriptor ([`adsala_gemm::GemmArgs`],
//! [`adsala_gemm::SyrkArgs`], [`adsala_gemm::GemvArgs`] — `f32` or `f64`)
//! and hand it to [`AdsalaService::run`]. One entry point validates,
//! decides, and executes; `sgemm`/`dgemm` remain as thin wrappers over
//! it. Malformed operands come back as [`crate::AdsalaError::Shape`]
//! instead of killing a serving thread with a panic.
//!
//! Diagnostics are atomics: `evaluations` counts actual model sweeps
//! (concurrent racing misses may sweep the same shape twice — both count),
//! and [`AdsalaService::cache_stats`] snapshots the memo counters.
//!
//! **Online adaptation.** The bundle slot is hot-swappable: every call
//! feeds the [`crate::online`] feedback loop (prediction-error meter,
//! drift detector, observation reservoir — all lock-cheap accounting),
//! and [`AdsalaService::swap_bundle`] publishes a retrained bundle under
//! live traffic. The swap is two ordered steps — install the new `Arc`
//! under the bundle `RwLock`, then bump the decision-cache generation —
//! while serving threads read the generation *before* loading the
//! bundle and publish decisions through `insert_if_generation`, so a
//! decision computed against the retired bundle can never outlive the
//! swap in the memo. In-flight requests are never blocked or dropped:
//! they finish under the plan they decided with (the retiring `Arc`
//! keeps its artefacts alive), and the next request simply decides
//! under the new epoch. When [`OnlineConfig::enabled`] is set and the
//! drift detector is tripped, decisions fall back to conservative
//! max-threads plans instead of trusting a model the measurements have
//! disowned.
//!
//! **Fault tolerance.** A kernel panic — a bug, or an injected fault from
//! [`adsala_gemm::fault`] — is confined to the request that triggered it:
//! the batch panic is caught at this boundary (the pool has already
//! respawned any workers it killed and reclaimed their arenas), and the
//! request is retried once on the *degraded plan* — serial, scalar
//! kernel, independent packing, blocked loop nest — which shares no
//! barriers, gangs, or workers with anything else and runs inline on the
//! caller's thread. The retry is attempted only when it is sound: the
//! deadline (if any) must not have passed, and the op must be idempotent
//! ([`OpRequest::is_idempotent`], i.e. `β == 0` — a partial first attempt
//! may have dirtied the output buffer, and with `β ≠ 0` the output is
//! also an input). An unrecoverable op returns
//! [`AdsalaError::Execution`]; the service itself stays healthy either
//! way. [`RunOptions::deadline`] bounds a call end-to-end: a request
//! whose deadline has already passed is refused up front with
//! [`AdsalaError::Timeout`] before touching the memo or the pool — the
//! check runs before the drift-fallback branch, so drifted routines
//! honor deadlines too. The counters (`panics_recovered`,
//! `degraded_retries`, `execution_failures`, `deadline_misses`) land in
//! [`ServiceStats`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use adsala_gemm::dispatch::{GemmArgs, OpRequest, OpShape, OpStats, Precision, Routine};
use adsala_gemm::isa::KernelIsa;
use adsala_gemm::plan::{Algorithm, ExecutionPlan, PackingStrategy};
use adsala_gemm::{
    ArenaStats, Element, PoolStats, PredictionErrorStats, PredictionMeter, ThreadPool,
};
use parking_lot::RwLock;

use crate::bundle::{ArtifactBundle, PlanDecision};
use crate::cache::{CacheStats, DecisionCache, DEFAULT_CACHE_CAPACITY, DEFAULT_CACHE_SHARDS};
use crate::online::{
    DriftDetector, DriftSnapshot, Observation, ObservationReservoir, OnlineConfig, ReservoirStats,
};
use crate::AdsalaError;

/// Tunables for [`AdsalaService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads in the persistent GEMM pool; 0 means one per
    /// available hardware thread.
    pub pool_workers: usize,
    /// Lock stripes in the decision cache.
    pub cache_shards: usize,
    /// Maximum resident decisions across all stripes.
    pub cache_capacity: usize,
    /// Online-adaptation knobs (reservoir size/sampling, drift band, and
    /// whether drift changes behaviour).
    pub online: OnlineConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            pool_workers: 0,
            cache_shards: DEFAULT_CACHE_SHARDS,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            online: OnlineConfig::default(),
        }
    }
}

/// Per-call options for [`AdsalaService::run_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Upper bound on the executed thread count (the host's core budget
    /// for this call); 0 means no cap beyond the model's choice.
    pub host_max_threads: u32,
    /// Skip the decision memo entirely: sweep the model fresh and do not
    /// insert the result (useful for measurements and cache-poisoning
    /// tests; the sweep still counts as an evaluation).
    pub bypass_cache: bool,
    /// Refuse the call with [`AdsalaError::Timeout`] if this instant has
    /// passed before execution starts (also re-checked before a degraded
    /// retry). `None` means no deadline. The check runs before the
    /// drift-fallback branch, so drifted routines honor deadlines too.
    pub deadline: Option<Instant>,
}

impl RunOptions {
    /// Cap the executed thread count at `max`.
    pub fn with_host_cap(max: u32) -> Self {
        Self { host_max_threads: max, ..Self::default() }
    }

    /// Set the call's deadline (builder-style).
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The thread cap these options impose on the decision sweep
    /// (`u32::MAX` when uncapped).
    ///
    /// The cap bounds the *sweep*, not the executed plan after the fact:
    /// the model prices candidates clamped to the cap and the argmin is
    /// taken among them, so a capped call's `PlanDecision` reports the
    /// predicted runtime of the configuration that actually runs. (The
    /// old decide-then-clamp behaviour executed `cap` threads while
    /// reporting the uncapped winner's prediction — and let a scheduler's
    /// joint budget be silently exceeded at decision time.)
    pub fn thread_cap(&self) -> u32 {
        if self.host_max_threads == 0 {
            u32::MAX
        } else {
            self.host_max_threads.max(1)
        }
    }
}

/// A thread-safe ADSALA BLAS server: shared artefacts, striped memo,
/// persistent execution pool, one `run` entry point for every routine
/// and precision.
#[derive(Debug)]
pub struct AdsalaService {
    /// The current artefact epoch. Reads are one brief `RwLock` read to
    /// clone the `Arc`; [`AdsalaService::swap_bundle`] takes the only
    /// write this lock ever sees.
    bundle: RwLock<Arc<ArtifactBundle>>,
    /// Decisions are memoised per `(shape, normalised thread cap)`: a
    /// capped sweep is a genuinely different optimisation problem, so a
    /// capped decision must never be served to an uncapped caller (or
    /// vice versa). Caps at or above the grid's maximum candidate
    /// normalise to the same key as "no cap", sharing one entry.
    cache: DecisionCache<(OpShape, u32)>,
    pool: ThreadPool,
    /// Model sweeps performed (memo hits don't count).
    evaluations: AtomicU64,
    /// Ops whose requested kernel ISA was unavailable at execution time
    /// and ran on a humbler one (see `OpStats::plan_degraded`).
    plan_downgrades: AtomicU64,
    /// Online-adaptation knobs.
    online: OnlineConfig,
    /// Rolling predicted-vs-measured error over every executed op.
    prediction: PredictionMeter,
    /// Per-routine rolling error with the drift trip wire.
    drift: DriftDetector,
    /// Bounded sink of executed-op observations for the retrainer.
    reservoir: ObservationReservoir,
    /// Bundle hot-swaps performed.
    swaps: AtomicU64,
    /// Decisions served as conservative fallbacks while drifted.
    drift_fallbacks: AtomicU64,
    /// Executed-algorithm tallies: `[blocked, strassen, zorder]`, counted
    /// by what actually ran (a refused Strassen plan lands in `blocked`
    /// *and* in `plan_downgrades`).
    algo_executed: [AtomicU64; 3],
    /// Kernel-batch panics caught at the service boundary (whether or not
    /// the degraded retry then succeeded).
    panics_recovered: AtomicU64,
    /// Degraded-plan retries attempted after a caught panic.
    degraded_retries: AtomicU64,
    /// Ops that returned [`AdsalaError::Execution`] — panicked and could
    /// not be (or were not safely) retried.
    execution_failures: AtomicU64,
    /// Calls refused with [`AdsalaError::Timeout`] because their deadline
    /// had passed.
    deadline_misses: AtomicU64,
}

/// Executed-algorithm mix of a service — the `[service]` plan-mix line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlgorithmMix {
    /// Ops that ran the blocked loop nest (including degraded plans).
    pub blocked: u64,
    /// Ops that ran the Strassen recursion.
    pub strassen: u64,
    /// Ops that ran the Z-order serial traversal.
    pub zorder: u64,
}

/// One-call snapshot of every service-level counter, for `[service]`
/// report lines and scheduler diagnostics.
#[derive(Debug, Clone, Copy)]
pub struct ServiceStats {
    /// Model sweeps performed (memo hits don't count).
    pub evaluations: u64,
    /// Ops that executed on a humbler kernel ISA than their plan asked
    /// for.
    pub plan_downgrades: u64,
    /// Bundle hot-swaps performed.
    pub swaps: u64,
    /// Current decision-cache generation (bumped once per swap).
    pub generation: u64,
    /// Decisions served as conservative fallbacks while drifted.
    pub drift_fallbacks: u64,
    /// Rolling predicted-vs-measured error since the last swap.
    pub prediction: PredictionErrorStats,
    /// Drift-detector state (trip wire + per-routine rolling error).
    pub drift: DriftSnapshot,
    /// Observation-reservoir occupancy and traffic.
    pub reservoir: ReservoirStats,
    /// Decision-memo counters.
    pub cache: CacheStats,
    /// Execution-pool gang-reservation counters.
    pub pool: PoolStats,
    /// Packing-arena counters of the pool's workspace.
    pub workspace: ArenaStats,
    /// Executed-algorithm mix.
    pub algorithms: AlgorithmMix,
    /// Kernel-batch panics caught and isolated at the service boundary.
    pub panics_recovered: u64,
    /// Degraded-plan retries attempted after a caught panic.
    pub degraded_retries: u64,
    /// Ops that failed with [`AdsalaError::Execution`].
    pub execution_failures: u64,
    /// Calls refused with [`AdsalaError::Timeout`] (expired deadline).
    pub deadline_misses: u64,
}

impl AdsalaService {
    /// Build a service with default tunables.
    pub fn new(bundle: Arc<ArtifactBundle>) -> Self {
        Self::with_config(bundle, ServiceConfig::default())
    }

    /// Build a service with explicit pool/cache/online tunables.
    pub fn with_config(bundle: Arc<ArtifactBundle>, cfg: ServiceConfig) -> Self {
        let pool = if cfg.pool_workers == 0 {
            ThreadPool::with_host_parallelism()
        } else {
            ThreadPool::new(cfg.pool_workers)
        };
        Self {
            bundle: RwLock::new(bundle),
            cache: DecisionCache::new(cfg.cache_shards, cfg.cache_capacity),
            pool,
            evaluations: AtomicU64::new(0),
            plan_downgrades: AtomicU64::new(0),
            online: cfg.online,
            prediction: PredictionMeter::default(),
            drift: DriftDetector::new(cfg.online.drift),
            reservoir: ObservationReservoir::new(
                cfg.online.reservoir_stripes,
                cfg.online.reservoir_capacity,
                cfg.online.sample_every,
            ),
            swaps: AtomicU64::new(0),
            drift_fallbacks: AtomicU64::new(0),
            algo_executed: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            panics_recovered: AtomicU64::new(0),
            degraded_retries: AtomicU64::new(0),
            execution_failures: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
        }
    }

    /// The artefact bundle of the current epoch (a cheap `Arc` clone; the
    /// caller's decisions stay coherent against this snapshot even if a
    /// hot-swap lands concurrently).
    pub fn bundle(&self) -> Arc<ArtifactBundle> {
        Arc::clone(&self.bundle.read())
    }

    /// Atomically publish a new artefact bundle and retire every memoised
    /// decision, without blocking or invalidating in-flight requests:
    /// first the bundle slot is replaced (one brief write lock), then the
    /// decision-cache generation is bumped so pre-swap decisions die.
    /// Requests already executing finish under the plan they decided with
    /// — the old `Arc` keeps their artefacts alive. Also resets the
    /// prediction meter and drift detector (their rolling errors measured
    /// the retiring model). Returns the new cache generation.
    pub fn swap_bundle(&self, bundle: Arc<ArtifactBundle>) -> u64 {
        *self.bundle.write() = bundle;
        // Order matters: the generation bump must follow the publish, so
        // any reader who saw the old generation either decided with the
        // old bundle (entry dies now) or the new one (entry is refused by
        // insert_if_generation and re-decided — conservative but never
        // stale).
        let generation = self.cache.bump_generation();
        self.swaps.fetch_add(1, Ordering::Relaxed);
        self.prediction.reset();
        self.drift.reset();
        generation
    }

    /// Candidate thread counts swept per decision (the grid's thread
    /// axis).
    pub fn candidates(&self) -> Vec<u32> {
        self.bundle().candidates().to_vec()
    }

    /// Worker threads in the persistent execution pool.
    pub fn pool_workers(&self) -> usize {
        self.pool.workers()
    }

    /// Aggregate packing-arena counters of the pool's workspace (the
    /// per-worker scratch slots plus the shared-B free list). On a warm
    /// service, `allocations` stops moving while `bytes_reused` keeps
    /// climbing — the observable form of the zero-allocation hot path
    /// (the paper's Table VII "data copy" component with the allocator
    /// taken out of it).
    pub fn workspace_stats(&self) -> ArenaStats {
        self.pool.workspace().arena_stats()
    }

    /// Normalise a thread cap into the memo key space: caps at or above
    /// the grid's largest candidate are equivalent to "no cap" (the sweep
    /// is identical), so they share one entry per shape. (Swap-safe: a
    /// refreshed bundle keeps its grid, so the bound is epoch-invariant.)
    fn normalised_cap(&self, cap: u32) -> u32 {
        cap.clamp(1, self.bundle().max_candidate_threads())
    }

    /// Pick the execution plan for any operation: memo first, model sweep
    /// on a miss. Callable concurrently through `&self`; equal shapes
    /// always yield equal plans because both the cache and the bundle
    /// are deterministic.
    pub fn select_for(&self, shape: OpShape) -> PlanDecision {
        self.select_for_capped(shape, u32::MAX)
    }

    /// Like [`AdsalaService::select_for`], but the sweep only considers
    /// plans with at most `cap` threads (candidates above the cap are
    /// clamped onto it before the model prices them). The returned
    /// decision's predicted runtime therefore describes the plan that
    /// will actually execute. Memoised per `(shape, normalised cap)`.
    pub fn select_for_capped(&self, shape: OpShape, cap: u32) -> PlanDecision {
        let cap = self.normalised_cap(cap);
        // Generation before bundle: if a swap lands in between, this
        // decision is refused below and the next caller re-decides under
        // the new epoch — a decision can never enter a younger memo than
        // the bundle it came from.
        let generation = self.cache.generation();
        if let Some(decision) = self.cache.get((shape, cap)) {
            return decision;
        }
        let decision = self.bundle().decide_op_capped(shape, cap);
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        self.cache.insert_if_generation((shape, cap), decision, generation);
        decision
    }

    /// The f32-GEMM special case of [`AdsalaService::select_for`], kept
    /// for the paper-faithful `(m, k, n)` call sites.
    pub fn select_threads(&self, m: u64, k: u64, n: u64) -> PlanDecision {
        self.select_for(OpShape::gemm(Precision::F32, m, k, n))
    }

    /// Serve one operation with default options: validate the operands,
    /// pick the execution plan (memoised per `(routine, precision,
    /// shape)`), and execute on the persistent pool.
    ///
    /// ```no_run
    /// use adsala::prelude::*;
    ///
    /// # fn demo(service: &AdsalaService) -> Result<(), AdsalaError> {
    /// let (m, n, k) = (64, 64, 256);
    /// let a = vec![1.0f64; m * k];
    /// let b = vec![0.5f64; k * n];
    /// let mut c = vec![0.0f64; m * n];
    /// let mut req: OpRequest<'_, f64> =
    ///     GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
    /// let (decision, stats) = service.run(&mut req)?;
    /// assert_eq!(stats.routine, Routine::Gemm);
    /// assert!(decision.threads() >= 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn run<T: Element>(
        &self,
        req: &mut OpRequest<'_, T>,
    ) -> Result<(PlanDecision, OpStats), AdsalaError> {
        self.run_with(req, RunOptions::default())
    }

    /// Like [`AdsalaService::run`] with per-call options (host thread
    /// cap, cache bypass).
    pub fn run_with<T: Element>(
        &self,
        req: &mut OpRequest<'_, T>,
        opts: RunOptions,
    ) -> Result<(PlanDecision, OpStats), AdsalaError> {
        // Reject malformed operands before touching the memo or the pool.
        req.validate()?;
        // The deadline gate precedes the drift-fallback branch: a drifted
        // routine's conservative decision still honors the caller's
        // deadline. The output buffer is untouched here.
        if opts.deadline.is_some_and(|d| Instant::now() >= d) {
            self.deadline_misses.fetch_add(1, Ordering::Relaxed);
            return Err(AdsalaError::Timeout(format!(
                "{} deadline passed before execution started",
                req.routine()
            )));
        }
        let shape = req.shape();
        let cap = self.normalised_cap(opts.thread_cap());
        let decision = if self.online.enabled && self.drift.is_drifted() {
            // The measurements have disowned the model: serve the
            // conservative max-threads baseline (never memoised — the
            // fallback must vanish the moment the detector recovers).
            self.drift_fallbacks.fetch_add(1, Ordering::Relaxed);
            self.bundle().conservative_op(shape, cap)
        } else if opts.bypass_cache {
            let d = self.bundle().decide_op_capped(shape, cap);
            self.evaluations.fetch_add(1, Ordering::Relaxed);
            d
        } else {
            self.select_for_capped(shape, cap)
        };
        // The cap bounded the sweep, so the decision *is* the executed
        // plan — no post-hoc clamp that would desynchronise the reported
        // prediction from the configuration that runs.
        match self.execute_guarded(req, &decision.plan) {
            Ok(mut stats) => {
                stats.predicted_ns = predicted_ns(decision.predicted_runtime_s);
                if stats.plan_degraded {
                    self.plan_downgrades.fetch_add(1, Ordering::Relaxed);
                }
                self.record_algorithm(stats.exec.algorithm);
                self.observe(
                    shape,
                    &decision.plan,
                    decision.predicted_runtime_s,
                    stats.exec.wall_ns,
                );
                Ok((decision, stats))
            }
            Err(detail) => {
                let stats = self.recover_from_panic(req, detail, opts.deadline)?;
                Ok((decision, stats))
            }
        }
    }

    /// The plan a panicked request retries on: serial, scalar kernel,
    /// independent packing, blocked loop nest. It shares nothing with the
    /// failed attempt — no pool workers, barriers, gangs, or shared-B
    /// regions — and runs inline on the caller's thread, so it cannot
    /// re-trip a worker-scoped fault or a poisoned coordination primitive.
    pub(crate) fn degraded_plan() -> ExecutionPlan {
        ExecutionPlan::with_threads(1)
            .with_isa(KernelIsa::Scalar)
            .with_packing(PackingStrategy::Independent)
            .with_algorithm(Algorithm::Blocked)
    }

    /// Run a validated request under `plan`, converting a kernel-batch
    /// panic into the captured message instead of unwinding through the
    /// serving layer.
    pub(crate) fn execute_guarded<T: Element>(
        &self,
        req: &mut OpRequest<'_, T>,
        plan: &ExecutionPlan,
    ) -> Result<OpStats, String> {
        catch_unwind(AssertUnwindSafe(|| req.execute_validated(&self.pool, plan)))
            .map_err(panic_message)
    }

    /// Count a caught kernel-batch panic and sweep the pool roster whole.
    /// The scheduler calls this for panics it catches around its own
    /// pool dispatches.
    pub(crate) fn note_panic_caught(&self) {
        self.panics_recovered.fetch_add(1, Ordering::Relaxed);
        self.pool.heal();
    }

    /// Count a degraded-plan retry attempt (scheduler-driven recovery).
    pub(crate) fn note_degraded_retry(&self) {
        self.degraded_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` unrecoverable executions (scheduler-driven recovery).
    pub(crate) fn note_execution_failures(&self, n: u64) {
        self.execution_failures.fetch_add(n, Ordering::Relaxed);
    }

    /// The isolate-and-retry path of [`AdsalaService::run_with`] after a
    /// caught kernel panic. The pool has already respawned any workers the
    /// panic killed (its batch wait does not return until the roster is
    /// whole); the `heal` here is a belt-and-braces sweep for panics that
    /// unwound outside a batch. A recovered op is *not* fed to
    /// [`AdsalaService::observe`] — the decision's prediction does not
    /// describe the degraded plan that actually ran — but it still counts
    /// in the executed-algorithm mix.
    pub(crate) fn recover_from_panic<T: Element>(
        &self,
        req: &mut OpRequest<'_, T>,
        detail: String,
        deadline: Option<Instant>,
    ) -> Result<OpStats, AdsalaError> {
        self.panics_recovered.fetch_add(1, Ordering::Relaxed);
        self.pool.heal();
        let routine = req.routine();
        if !req.is_idempotent() {
            // The first attempt may have dirtied the β-scaled output;
            // rerunning would double-apply it.
            self.execution_failures.fetch_add(1, Ordering::Relaxed);
            return Err(AdsalaError::Execution {
                routine,
                detail: format!("{detail} (not retried: beta != 0 makes a rerun unsound)"),
            });
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            // Not a clean Timeout: the panicked attempt may have written
            // into the output buffer, which Timeout promises is untouched.
            self.deadline_misses.fetch_add(1, Ordering::Relaxed);
            self.execution_failures.fetch_add(1, Ordering::Relaxed);
            return Err(AdsalaError::Execution {
                routine,
                detail: format!("{detail} (deadline passed before the degraded retry)"),
            });
        }
        self.degraded_retries.fetch_add(1, Ordering::Relaxed);
        match self.execute_guarded(req, &Self::degraded_plan()) {
            Ok(mut stats) => {
                stats.plan_degraded = true;
                self.plan_downgrades.fetch_add(1, Ordering::Relaxed);
                self.record_algorithm(stats.exec.algorithm);
                Ok(stats)
            }
            Err(retry_detail) => {
                self.pool.heal();
                self.execution_failures.fetch_add(1, Ordering::Relaxed);
                Err(AdsalaError::Execution {
                    routine,
                    detail: format!("{detail}; degraded retry also failed: {retry_detail}"),
                })
            }
        }
    }

    /// Execute a request under a caller-pinned [`ExecutionPlan`] on the
    /// service's pool, skipping the model sweep and the memo. Downgrade
    /// and algorithm-mix telemetry still apply; the prediction meter and
    /// drift detector do not (a pinned run carries no prediction to
    /// compare against).
    pub fn run_pinned<T: Element>(
        &self,
        req: &mut OpRequest<'_, T>,
        plan: &ExecutionPlan,
    ) -> Result<OpStats, AdsalaError> {
        req.validate()?;
        let stats = match self.execute_guarded(req, plan) {
            Ok(stats) => stats,
            Err(detail) => return Err(self.pinned_panic(req.routine(), detail)),
        };
        if stats.plan_degraded {
            self.plan_downgrades.fetch_add(1, Ordering::Relaxed);
        }
        self.record_algorithm(stats.exec.algorithm);
        Ok(stats)
    }

    /// Fault path of [`AdsalaService::run_pinned`]: the caller pinned the
    /// plan, so there is no degraded retry — substituting a different
    /// configuration would betray the pin. The panic is still isolated
    /// and the pool swept whole.
    fn pinned_panic(&self, routine: Routine, detail: String) -> AdsalaError {
        self.panics_recovered.fetch_add(1, Ordering::Relaxed);
        self.pool.heal();
        self.execution_failures.fetch_add(1, Ordering::Relaxed);
        AdsalaError::Execution { routine, detail: format!("{detail} (pinned plan, no retry)") }
    }

    /// Feed one executed op into the feedback loop: the prediction
    /// meter, the drift detector, and (sampled) the observation
    /// reservoir. [`AdsalaService::run_with`] calls this for every
    /// request; layers that execute on the pool directly (the
    /// co-scheduler) call it themselves. Lock-cheap and never blocking.
    pub fn observe(
        &self,
        shape: OpShape,
        plan: &ExecutionPlan,
        predicted_runtime_s: f64,
        wall_ns: u64,
    ) {
        self.prediction.record(predicted_runtime_s, wall_ns);
        self.drift.record(shape.routine, predicted_runtime_s, wall_ns);
        self.reservoir.record(Observation { shape, plan: *plan, predicted_runtime_s, wall_ns });
    }

    /// Single-precision GEMM through [`AdsalaService::run_with`]:
    /// `C ← α·A·B + β·C`, row-major, thread count ML-selected and clamped
    /// to `host_max_threads` (v1 semantics: 0 executes on one thread).
    /// Kept so v1 callers migrate mechanically.
    #[allow(clippy::too_many_arguments)] // BLAS-style signature
    pub fn sgemm(
        &self,
        m: usize,
        n: usize,
        k: usize,
        alpha: f32,
        a: &[f32],
        lda: usize,
        b: &[f32],
        ldb: usize,
        beta: f32,
        c: &mut [f32],
        ldc: usize,
        host_max_threads: u32,
    ) -> Result<(PlanDecision, OpStats), AdsalaError> {
        let mut req: OpRequest<'_, f32> =
            GemmArgs::untransposed(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc).into();
        self.run_with(&mut req, RunOptions::with_host_cap(host_max_threads.max(1)))
    }

    /// Double-precision GEMM through [`AdsalaService::run_with`] — the
    /// `f64` twin of [`AdsalaService::sgemm`].
    #[allow(clippy::too_many_arguments)] // BLAS-style signature
    pub fn dgemm(
        &self,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        a: &[f64],
        lda: usize,
        b: &[f64],
        ldb: usize,
        beta: f64,
        c: &mut [f64],
        ldc: usize,
        host_max_threads: u32,
    ) -> Result<(PlanDecision, OpStats), AdsalaError> {
        let mut req: OpRequest<'_, f64> =
            GemmArgs::untransposed(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc).into();
        self.run_with(&mut req, RunOptions::with_host_cap(host_max_threads.max(1)))
    }

    /// The persistent execution pool, for layers (like the co-scheduler)
    /// that dispatch through this service's workers directly.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Model sweeps performed so far (accurate under concurrency).
    pub fn evaluations(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }

    /// Ops that executed on a humbler kernel ISA than their plan asked
    /// for (accurate under concurrency).
    pub fn plan_downgrades(&self) -> u64 {
        self.plan_downgrades.load(Ordering::Relaxed)
    }

    /// Snapshot the decision-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Snapshot the pool's gang-reservation counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Rolling predicted-vs-measured error since the last swap.
    pub fn prediction_stats(&self) -> PredictionErrorStats {
        self.prediction.snapshot()
    }

    /// Drift-detector state (trip wire + per-routine rolling error).
    pub fn drift_snapshot(&self) -> DriftSnapshot {
        self.drift.snapshot()
    }

    /// Whether the drift detector is currently tripped.
    pub fn is_drifted(&self) -> bool {
        self.drift.is_drifted()
    }

    /// Untrip the drift detector and zero its rolling errors without
    /// swapping a bundle (an operator override; a swap resets it anyway).
    pub fn reset_drift(&self) {
        self.drift.reset();
    }

    /// Observation-reservoir occupancy and traffic counters.
    pub fn reservoir_stats(&self) -> ReservoirStats {
        self.reservoir.stats()
    }

    /// Take every resident observation (the retrainer's feed).
    pub fn drain_observations(&self) -> Vec<crate::online::Observation> {
        self.reservoir.drain()
    }

    /// Bundle hot-swaps performed so far.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Current decision-cache generation (bumped once per swap).
    pub fn generation(&self) -> u64 {
        self.cache.generation()
    }

    /// Decisions served as conservative fallbacks while drifted.
    pub fn drift_fallbacks(&self) -> u64 {
        self.drift_fallbacks.load(Ordering::Relaxed)
    }

    /// Kernel-batch panics caught and isolated at the service boundary.
    pub fn panics_recovered(&self) -> u64 {
        self.panics_recovered.load(Ordering::Relaxed)
    }

    /// Degraded-plan retries attempted after a caught panic.
    pub fn degraded_retries(&self) -> u64 {
        self.degraded_retries.load(Ordering::Relaxed)
    }

    /// Ops that failed with [`AdsalaError::Execution`].
    pub fn execution_failures(&self) -> u64 {
        self.execution_failures.load(Ordering::Relaxed)
    }

    /// Calls refused with [`AdsalaError::Timeout`] (expired deadline).
    pub fn deadline_misses(&self) -> u64 {
        self.deadline_misses.load(Ordering::Relaxed)
    }

    /// Tally one executed op under the algorithm that actually ran.
    /// [`AdsalaService::run_with`] calls this; layers that execute on the
    /// pool directly (the co-scheduler) call it themselves, like
    /// [`AdsalaService::observe`].
    pub fn record_algorithm(&self, algorithm: Algorithm) {
        let slot = match algorithm {
            Algorithm::Blocked => 0,
            Algorithm::Strassen { .. } => 1,
            Algorithm::ZOrder => 2,
        };
        self.algo_executed[slot].fetch_add(1, Ordering::Relaxed);
    }

    /// Executed-algorithm mix so far.
    pub fn algorithm_mix(&self) -> AlgorithmMix {
        AlgorithmMix {
            blocked: self.algo_executed[0].load(Ordering::Relaxed),
            strassen: self.algo_executed[1].load(Ordering::Relaxed),
            zorder: self.algo_executed[2].load(Ordering::Relaxed),
        }
    }

    /// Snapshot every service-level counter at once.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            evaluations: self.evaluations(),
            plan_downgrades: self.plan_downgrades(),
            swaps: self.swaps(),
            generation: self.generation(),
            drift_fallbacks: self.drift_fallbacks(),
            prediction: self.prediction_stats(),
            drift: self.drift_snapshot(),
            reservoir: self.reservoir_stats(),
            cache: self.cache_stats(),
            pool: self.pool_stats(),
            workspace: self.workspace_stats(),
            algorithms: self.algorithm_mix(),
            panics_recovered: self.panics_recovered(),
            degraded_retries: self.degraded_retries(),
            execution_failures: self.execution_failures(),
            deadline_misses: self.deadline_misses(),
        }
    }

    /// Forget all memoised decisions (e.g. after a machine change). The
    /// counters and the evaluation count are preserved.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }
}

/// Render a caught panic payload as a message for
/// [`AdsalaError::Execution`] details.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A model prediction in seconds as integer nanoseconds for
/// [`OpStats::predicted_ns`] (0 for absent/absurd predictions).
pub(crate) fn predicted_ns(predicted_runtime_s: f64) -> u64 {
    if predicted_runtime_s > 0.0 && predicted_runtime_s.is_finite() {
        (predicted_runtime_s * 1e9).round().max(0.0) as u64
    } else {
        0
    }
}

// The whole point of the service layer: shareable across client threads.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = _assert_send_sync::<AdsalaService>();

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::tests::quick_bundle;
    use adsala_gemm::dispatch::{GemvArgs, Routine, SyrkArgs};

    fn service() -> AdsalaService {
        AdsalaService::with_config(
            quick_bundle().into_shared(),
            ServiceConfig { pool_workers: 4, ..ServiceConfig::default() },
        )
    }

    #[test]
    fn decisions_memoise_across_calls() {
        let svc = service();
        let first = svc.select_threads(128, 512, 128);
        let second = svc.select_threads(128, 512, 128);
        assert!(!first.memoised);
        assert!(second.memoised);
        assert_eq!(first.threads(), second.threads());
        assert_eq!(svc.evaluations(), 1, "memo hit must not re-sweep");
        let stats = svc.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn sgemm_runs_on_pool_and_is_correct() {
        let svc = service();
        let (m, k, n) = (33usize, 17usize, 29usize);
        let a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32 - 3.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32 * 0.5).collect();
        let mut c = vec![0.0f32; m * n];
        let (decision, stats) = svc.sgemm(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n, 4).unwrap();
        assert!(svc.candidates().contains(&decision.threads()));
        assert_eq!(stats.routine, Routine::Gemm);
        assert_eq!(stats.precision, Precision::F32);
        assert!(stats.exec.threads_used >= 1 && stats.exec.threads_used <= 4);
        let mut c_ref = vec![0.0f32; m * n];
        adsala_gemm::naive::naive_gemm(
            adsala_gemm::Transpose::No,
            adsala_gemm::Transpose::No,
            m,
            n,
            k,
            1.0f32,
            &a,
            k,
            &b,
            n,
            0.0,
            &mut c_ref,
            n,
        );
        for (x, y) in c.iter().zip(&c_ref) {
            assert!((x - y).abs() <= 1e-3 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn run_serves_every_routine_and_precision() {
        let svc = service();
        let (m, n, k) = (24usize, 20usize, 16usize);

        let a64: Vec<f64> = (0..m * k).map(|i| (i % 9) as f64 - 4.0).collect();
        let b64: Vec<f64> = (0..k * n).map(|i| (i % 5) as f64 * 0.5).collect();
        let mut c64 = vec![0.0f64; m * n];
        let mut req: OpRequest<'_, f64> =
            GemmArgs::untransposed(m, n, k, 1.0, &a64, k, &b64, n, 0.0, &mut c64, n).into();
        let (_, stats) = svc.run(&mut req).unwrap();
        assert_eq!((stats.routine, stats.precision), (Routine::Gemm, Precision::F64));

        let mut csy = vec![0.0f64; m * m];
        let mut req: OpRequest<'_, f64> =
            SyrkArgs { m, k, alpha: 1.0, a: &a64, lda: k, beta: 0.0, c: &mut csy, ldc: m }.into();
        let (d, stats) = svc.run(&mut req).unwrap();
        assert_eq!(stats.routine, Routine::Syrk);
        assert!(svc.candidates().contains(&d.threads()));

        let x32: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let a32: Vec<f32> = (0..m * n).map(|i| (i % 3) as f32).collect();
        let mut y32 = vec![0.0f32; m];
        let mut req: OpRequest<'_, f32> =
            GemvArgs { m, n, alpha: 1.0, a: &a32, lda: n, x: &x32, beta: 0.0, y: &mut y32 }.into();
        let (_, stats) = svc.run(&mut req).unwrap();
        assert_eq!((stats.routine, stats.precision), (Routine::Gemv, Precision::F32));

        // Three distinct (routine, precision, shape) keys were decided.
        assert_eq!(svc.cache_stats().entries, 3);
    }

    #[test]
    fn run_rejects_undersized_operands() {
        let svc = service();
        let a = vec![0.0f32; 5]; // needs 12 for 4x3
        let b = vec![0.0f32; 6];
        let mut c = vec![9.0f32; 8];
        let mut req: OpRequest<'_, f32> =
            GemmArgs::untransposed(4, 2, 3, 1.0, &a, 3, &b, 2, 0.0, &mut c, 2).into();
        match svc.run(&mut req) {
            Err(AdsalaError::Shape(e)) => assert_eq!(e.routine, Routine::Gemm),
            other => panic!("expected shape error, got {other:?}"),
        }
        assert!(c.iter().all(|&v| v == 9.0), "output must be untouched");
        assert_eq!(svc.cache_stats().lookups(), 0, "invalid requests must not touch the memo");
    }

    #[test]
    fn bypass_cache_sweeps_fresh_without_inserting() {
        let svc = service();
        let (m, n, k) = (16usize, 16usize, 16usize);
        let a = vec![1.0f32; m * k];
        let b = vec![1.0f32; k * n];
        let mut c = vec![0.0f32; m * n];
        let opts = RunOptions { bypass_cache: true, ..RunOptions::default() };
        for _ in 0..3 {
            let mut req: OpRequest<'_, f32> =
                GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
            svc.run_with(&mut req, opts).unwrap();
        }
        assert_eq!(svc.evaluations(), 3, "every bypassed call sweeps");
        assert_eq!(svc.cache_stats().entries, 0, "bypass must not populate the memo");
    }

    #[test]
    fn sgemm_zero_cap_keeps_v1_single_thread_semantics() {
        // Pre-redesign, host_max_threads = 0 clamped execution to one
        // thread; the compat wrappers must preserve that, while
        // RunOptions itself treats 0 as "no cap".
        let svc = service();
        let (m, n, k) = (256usize, 256usize, 16usize);
        let a = vec![1.0f32; m * k];
        let b = vec![1.0f32; k * n];
        let mut c = vec![0.0f32; m * n];
        let (_, stats) = svc.sgemm(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n, 0).unwrap();
        assert_eq!(stats.exec.threads_used, 1, "v1 callers passing 0 pinned serial execution");
    }

    #[test]
    fn host_cap_clamps_executed_threads() {
        let svc = service();
        let (m, n, k) = (512usize, 512usize, 32usize);
        let a = vec![1.0f32; m * k];
        let b = vec![1.0f32; k * n];
        let mut c = vec![0.0f32; m * n];
        let mut req: OpRequest<'_, f32> =
            GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
        let (_, stats) = svc.run_with(&mut req, RunOptions::with_host_cap(2)).unwrap();
        assert!(stats.exec.threads_used <= 2, "{stats:?}");
    }

    #[test]
    fn algorithm_mix_counts_what_actually_ran() {
        let svc = service();
        let (m, n, k) = (32usize, 32usize, 32usize);
        let a = vec![1.0f32; m * k];
        let b = vec![1.0f32; k * n];
        let mut c = vec![0.0f32; m * n];

        // A model-decided run lands in the blocked bucket (the quick
        // bundle's grid has no algorithm axis).
        let mut req: OpRequest<'_, f32> =
            GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
        svc.run(&mut req).unwrap();
        assert_eq!(svc.algorithm_mix(), AlgorithmMix { blocked: 1, strassen: 0, zorder: 0 });

        // A pinned Z-order plan is honoured and tallied as such.
        let zorder =
            ExecutionPlan { algorithm: Algorithm::ZOrder, ..ExecutionPlan::with_threads(1) };
        let mut req: OpRequest<'_, f32> =
            GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
        let stats = svc.run_pinned(&mut req, &zorder).unwrap();
        assert_eq!(stats.exec.algorithm, Algorithm::ZOrder);
        assert!(!stats.plan_degraded);

        // A Strassen plan on an ineligible (tiny) shape degrades to the
        // blocked driver: the mix records the executed algorithm and the
        // downgrade counter records the refusal.
        let downgrades_before = svc.stats().plan_downgrades;
        let strassen = ExecutionPlan {
            algorithm: Algorithm::Strassen { cutoff: 64 },
            ..ExecutionPlan::with_threads(1)
        };
        let mut req: OpRequest<'_, f32> =
            GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
        let stats = svc.run_pinned(&mut req, &strassen).unwrap();
        assert_eq!(stats.exec.algorithm, Algorithm::Blocked);
        assert!(stats.plan_degraded);

        let snapshot = svc.stats();
        assert_eq!(snapshot.algorithms, AlgorithmMix { blocked: 2, strassen: 0, zorder: 1 });
        assert_eq!(snapshot.plan_downgrades, downgrades_before + 1);
    }

    #[test]
    fn host_cap_bounds_the_sweep_not_just_execution() {
        // Regression: the cap used to be applied *after* the uncapped
        // argmin, so a capped call executed `cap` threads while reporting
        // the uncapped winner's (plan, prediction). The cap must bound
        // the candidate sweep itself, including off-ladder caps that sit
        // between grid points.
        let svc = service();
        let shape = OpShape::gemm(Precision::F32, 512, 64, 512);
        let capped = svc.select_for_capped(shape, 3);
        assert!(capped.threads() <= 3, "{capped:?}");
        let direct = svc.bundle().decide_op_capped(shape, 3);
        assert_eq!(capped.plan, direct.plan, "service must serve the capped sweep's argmin");
        assert_eq!(
            capped.predicted_runtime_s, direct.predicted_runtime_s,
            "prediction must describe the executed configuration"
        );

        // Capped and uncapped decisions are distinct memo entries.
        let uncapped = svc.select_for(shape);
        assert_eq!(svc.evaluations(), 2, "distinct caps must sweep separately");
        assert_eq!(svc.cache_stats().entries, 2);
        assert!(uncapped.threads() >= capped.threads());

        // A cap at/above the grid's maximum is "no cap" and shares the
        // uncapped entry instead of re-sweeping.
        let wide = svc.select_for_capped(shape, u32::MAX - 1);
        assert!(wide.memoised);
        assert_eq!(wide.plan, uncapped.plan);
        assert_eq!(svc.evaluations(), 2);

        // And the executed plan is the capped decision, not a clamp.
        let (m, n, k) = (512usize, 512usize, 64usize);
        let a = vec![1.0f32; m * k];
        let b = vec![1.0f32; k * n];
        let mut c = vec![0.0f32; m * n];
        let mut req: OpRequest<'_, f32> =
            GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
        let (decision, stats) = svc.run_with(&mut req, RunOptions::with_host_cap(3)).unwrap();
        assert_eq!(decision.plan, capped.plan);
        assert!(stats.exec.threads_used <= 3, "{stats:?}");
    }

    #[test]
    fn swap_bundle_bumps_generation_and_forces_reevaluation() {
        let svc = service();
        let before = svc.select_threads(128, 512, 128);
        assert_eq!(svc.generation(), 0);
        let refreshed = svc.bundle().refreshed(svc.bundle().models.clone()).into_shared();
        let generation = svc.swap_bundle(refreshed);
        assert_eq!(generation, 1);
        assert_eq!(svc.generation(), 1);
        assert_eq!(svc.swaps(), 1);
        let after = svc.select_threads(128, 512, 128);
        assert!(!after.memoised, "a swap must retire memoised decisions");
        assert_eq!(svc.evaluations(), 2);
        // Identical models ⇒ identical decision, freshly swept.
        assert_eq!(after.plan, before.plan);
    }

    #[test]
    fn run_stamps_prediction_and_feeds_the_meter() {
        let svc = service();
        let (m, n, k) = (64usize, 64usize, 64usize);
        let a = vec![1.0f32; m * k];
        let b = vec![1.0f32; k * n];
        let mut c = vec![0.0f32; m * n];
        let mut req: OpRequest<'_, f32> =
            GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
        let (decision, stats) = svc.run(&mut req).unwrap();
        assert!(decision.predicted_runtime_s > 0.0);
        assert_eq!(stats.predicted_ns, (decision.predicted_runtime_s * 1e9).round() as u64);
        assert!(stats.prediction_log_error().is_some());
        let s = svc.stats();
        assert_eq!(s.prediction.samples, 1);
        assert_eq!(s.reservoir.recorded, 1, "every served op must reach the reservoir");
        assert_eq!(s.drift.for_routine(Routine::Gemm).samples, 1);
        let drained = svc.drain_observations();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].shape, OpShape::gemm(Precision::F32, 64, 64, 64));
        assert_eq!(drained[0].plan, decision.plan);
        assert_eq!(drained[0].wall_ns, stats.exec.wall_ns);
    }

    #[test]
    fn drifted_service_serves_conservative_fallbacks_when_enabled() {
        use crate::online::DriftConfig;
        let cfg = ServiceConfig {
            pool_workers: 4,
            online: OnlineConfig {
                enabled: true,
                drift: DriftConfig { min_samples: 4, alpha: 0.5, ..DriftConfig::default() },
                ..OnlineConfig::default()
            },
            ..ServiceConfig::default()
        };
        let svc = AdsalaService::with_config(quick_bundle().into_shared(), cfg);
        let shape = OpShape::gemm(Precision::F32, 64, 64, 64);
        let plan = adsala_gemm::plan::ExecutionPlan::with_threads(2);
        // Sustained 8× slowdown versus prediction: trips the detector.
        for _ in 0..16 {
            svc.observe(shape, &plan, 1e-3, 8_000_000);
        }
        assert!(svc.is_drifted());
        let (m, n, k) = (64usize, 64usize, 64usize);
        let a = vec![1.0f32; m * k];
        let b = vec![1.0f32; k * n];
        let mut c = vec![0.0f32; m * n];
        let mut req: OpRequest<'_, f32> =
            GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
        let cap = 2;
        let (decision, _) = svc.run_with(&mut req, RunOptions::with_host_cap(cap)).unwrap();
        assert_eq!(svc.drift_fallbacks(), 1);
        assert!(!decision.memoised, "fallback decisions must not be memoised");
        assert_eq!(decision.plan, svc.bundle().conservative_op(shape, cap).plan);
        assert_eq!(decision.threads(), cap, "conservative = widest plan within the cap");
        // Recovery (here via the operator override) restores model serving.
        svc.reset_drift();
        assert!(!svc.is_drifted());
        let mut req: OpRequest<'_, f32> =
            GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
        svc.run_with(&mut req, RunOptions::with_host_cap(cap)).unwrap();
        assert_eq!(svc.drift_fallbacks(), 1, "recovered service trusts the model again");
    }

    #[test]
    fn clear_cache_forces_reevaluation() {
        let svc = service();
        svc.select_threads(100, 100, 100);
        svc.clear_cache();
        let d = svc.select_threads(100, 100, 100);
        assert!(!d.memoised);
        assert_eq!(svc.evaluations(), 2);
    }

    #[test]
    fn shared_bundle_feeds_many_services() {
        let bundle = quick_bundle().into_shared();
        let a = AdsalaService::with_config(
            Arc::clone(&bundle),
            ServiceConfig { pool_workers: 1, ..ServiceConfig::default() },
        );
        let b = AdsalaService::with_config(
            bundle,
            ServiceConfig { pool_workers: 1, ..ServiceConfig::default() },
        );
        assert_eq!(
            a.select_threads(64, 2048, 64).threads(),
            b.select_threads(64, 2048, 64).threads()
        );
    }
}
