//! One serving surface for every routine and precision: f32/f64 GEMM,
//! SYRK, and GEMV through a single `AdsalaService::run(..)` entry point.
//!
//! The flow demonstrates the full op-descriptor API:
//!
//! 1. install once on the simulated Gadi node (trains the GEMM model),
//! 2. train *dedicated* SYRK and GEMV selectors on the same machine with
//!    the same preprocessing config (the per-routine timers answer the
//!    paper's follow-up: each routine has its own thread response curve),
//! 3. pack everything into one schema-v2 artefact (`ModelTable`) and
//!    round-trip it through JSON,
//! 4. serve mixed routine/precision traffic from concurrent clients,
//!    verifying every result against the naive kernels.
//!
//! ```sh
//! cargo run --release --example multi_routine_serving
//! ```

use adsala::gather::{GatherConfig, TrainingData};
use adsala::install::{InstallConfig, Installation};
use adsala::prelude::*;
use adsala_machine::{BlasOp, GemmTimer, MachineModel, OpTimer, SimTimer};
use adsala_ml::data::Matrix;
use adsala_ml::tune::ModelSpec;
use adsala_ml::{AnyModel, Regressor};

/// Train a dedicated selector for one routine: time the routine itself
/// (not GEMM) on the target machine, push the timings through the *base*
/// preprocessing config — the bundle shares one config across routines —
/// and fit a boosted-tree regressor on the transformed rows.
fn train_routine_model(
    base_config: &adsala::PreprocessConfig,
    machine: MachineModel,
    op: BlasOp,
    seed: u64,
) -> AnyModel {
    let timer = OpTimer::new(machine, op);
    let gather = GatherConfig { n_shapes: 60, reps: 2, ..GatherConfig::quick() };
    let data = TrainingData::gather(&timer, &gather);
    let rows: Vec<Vec<f64>> = data
        .records
        .iter()
        .map(|r| base_config.features_for(r.shape.m, r.shape.k, r.shape.n, r.threads()))
        .collect();
    let labels: Vec<f64> =
        data.records.iter().map(|r| base_config.label_for_runtime(r.runtime_s)).collect();
    let mut model =
        ModelSpec::XgBoost { n_rounds: 40, max_depth: 4, eta: 0.2, lambda: 1.0 }.build(seed);
    model.fit(&Matrix::from_rows(&rows), &labels).expect("fit routine model");
    model
}

fn main() {
    // 1. Base installation: the GEMM model and the preprocessing config.
    let machine = MachineModel::gadi();
    let timer = SimTimer::new(machine.clone());
    println!("installing on {} ...", GemmTimer::name(&timer));
    let install = Installation::run(&timer, &InstallConfig::quick()).expect("install");
    println!("GEMM model family: {:?}", install.selected);
    let bundle = install.into_bundle();

    // 2. Dedicated per-routine selectors, sharing the bundle's config.
    println!("training dedicated SYRK and GEMV selectors ...");
    let syrk_model = train_routine_model(&bundle.config, machine.clone(), BlasOp::Syrk, 11);
    let gemv_model = train_routine_model(&bundle.config, machine, BlasOp::Gemv, 13);
    let bundle = bundle
        .with_routine_model(Routine::Syrk, syrk_model)
        .with_routine_model(Routine::Gemv, gemv_model);

    // 3. Round-trip the v2 artefact: one JSON document now carries the
    //    whole model table.
    let dir = std::env::temp_dir().join("adsala-multi-routine");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("artifact_v2.json");
    bundle.save("gadi-sim", &path).expect("save v2 artefact");
    let bundle = ArtifactBundle::load(&path).expect("load v2 artefact").into_shared();
    println!("v2 artefact round-tripped through {}", path.display());

    // Show the per-routine decisions at one feature-space point: SYRK and
    // GEMV have their own response curves, so their dedicated models may
    // disagree with the GEMM fallback.
    println!("\n{:<28} {:>8} {:>16}", "operation", "threads", "predicted (us)");
    for shape in [
        OpShape::gemm(Precision::F32, 2000, 200, 2000),
        OpShape::syrk(Precision::F64, 2000, 200),
        OpShape::gemv(Precision::F64, 20_000, 2000),
    ] {
        let d = bundle.decide_op(shape);
        println!(
            "{:<28} {:>8} {:>16.1}",
            format!("{} {} {:?}", shape.precision, shape.routine, shape.dims),
            d.threads(),
            d.predicted_runtime_s * 1e6
        );
    }

    // 4. One service, four concurrent clients, four routine/precision mixes.
    let service = AdsalaService::with_config(
        bundle,
        ServiceConfig {
            pool_workers: 0,
            cache_shards: 8,
            cache_capacity: 1024,
            ..ServiceConfig::default()
        },
    );
    let rounds = 12usize;
    std::thread::scope(|scope| {
        // f32 GEMM client.
        let svc = &service;
        scope.spawn(move || {
            let (m, n, k) = (64usize, 48usize, 256usize);
            let a = vec![1.0f32; m * k];
            let b = vec![0.5f32; k * n];
            for _ in 0..rounds {
                let mut c = vec![0.0f32; m * n];
                let mut req: OpRequest<'_, f32> =
                    GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
                let (_, stats) = svc.run(&mut req).expect("f32 gemm");
                assert_eq!(stats.routine, Routine::Gemm);
                let expected = k as f32 * 0.5;
                assert!(c.iter().all(|&v| (v - expected).abs() <= 1e-2 * expected));
            }
        });
        // f64 GEMM client (same dims as f32 — distinct cache entry).
        scope.spawn(move || {
            let (m, n, k) = (64usize, 48usize, 256usize);
            let a = vec![1.0f64; m * k];
            let b = vec![0.5f64; k * n];
            for _ in 0..rounds {
                let mut c = vec![0.0f64; m * n];
                let (_, stats) =
                    svc.dgemm(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n, 8).expect("f64 gemm");
                assert_eq!(stats.precision, Precision::F64);
                let expected = k as f64 * 0.5;
                assert!(c.iter().all(|&v| (v - expected).abs() <= 1e-9 * expected));
            }
        });
        // f64 SYRK client: C = A·Aᵀ for constant A is k in every cell.
        scope.spawn(move || {
            let (m, k) = (96usize, 32usize);
            let a = vec![1.0f64; m * k];
            for _ in 0..rounds {
                let mut c = vec![0.0f64; m * m];
                let mut req: OpRequest<'_, f64> =
                    SyrkArgs { m, k, alpha: 1.0, a: &a, lda: k, beta: 0.0, c: &mut c, ldc: m }
                        .into();
                let (_, stats) = svc.run(&mut req).expect("f64 syrk");
                assert_eq!(stats.routine, Routine::Syrk);
                for i in 0..m {
                    for j in 0..=i {
                        assert!((c[i * m + j] - k as f64).abs() < 1e-9);
                    }
                }
            }
        });
        // f32 GEMV client: y = A·x for constant operands is n · 0.5.
        scope.spawn(move || {
            let (m, n) = (512usize, 128usize);
            let a = vec![1.0f32; m * n];
            let x = vec![0.5f32; n];
            for _ in 0..rounds {
                let mut y = vec![0.0f32; m];
                let mut req: OpRequest<'_, f32> =
                    GemvArgs { m, n, alpha: 1.0, a: &a, lda: n, x: &x, beta: 0.0, y: &mut y }
                        .into();
                let (_, stats) = svc.run(&mut req).expect("f32 gemv");
                assert_eq!(stats.routine, Routine::Gemv);
                let expected = n as f32 * 0.5;
                assert!(y.iter().all(|&v| (v - expected).abs() <= 1e-2 * expected));
            }
        });
    });
    println!("\n4 clients x {rounds} mixed-routine calls served and verified");

    // Malformed traffic is rejected, not fatal.
    let a = vec![0.0f32; 16];
    let x = vec![0.0f32; 4];
    let mut y = vec![0.0f32; 2]; // too short for m = 4
    let mut bad: OpRequest<'_, f32> =
        GemvArgs { m: 4, n: 4, alpha: 1.0, a: &a, lda: 4, x: &x, beta: 0.0, y: &mut y }.into();
    match service.run(&mut bad) {
        Err(AdsalaError::Shape(e)) => println!("malformed request rejected: {e}"),
        other => panic!("expected a shape error, got {other:?}"),
    }

    // 5. Serving diagnostics: one cache, keyed by (routine, precision, dims).
    let stats = service.cache_stats();
    println!(
        "cache: {} hits / {} misses ({:.0}% hit rate), {} entries across {} shards",
        stats.hits,
        stats.misses,
        100.0 * stats.hit_rate(),
        stats.entries,
        stats.shards
    );
    assert_eq!(stats.entries, 4, "four distinct (routine, precision, shape) keys");
    assert!(stats.hits > 0);
    println!("model sweeps: {}", service.evaluations());
    std::fs::remove_file(&path).ok();
    println!("done.");
}
