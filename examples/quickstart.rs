//! Quickstart: train ADSALA on a simulated HPC node, save/load the
//! artefacts, and run a real ML-thread-selected GEMM on this machine.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use adsala::install::{InstallConfig, Installation};
use adsala_machine::{MachineModel, SimTimer};

fn main() {
    // 1. Pick a machine. The simulated Gadi node (2× Cascade Lake, 96
    //    hardware threads, Intel-MKL-like BLAS behaviour) stands in for
    //    the paper's testbed; swap in `HostTimer::default()` to gather
    //    timings from this machine's real cores instead.
    let timer = SimTimer::new(MachineModel::gadi());
    println!("machine: {}", adsala_machine::GemmTimer::name(&timer));

    // 2. Install: sample shapes, time them, preprocess, tune model
    //    families, select by estimated speedup. `quick()` keeps this to a
    //    few seconds; `InstallConfig::paper()` is the full-size run.
    println!("installing (gather -> preprocess -> tune -> select)...");
    let install = Installation::run(&timer, &InstallConfig::quick()).expect("install");
    println!("selected model family: {:?}", install.selected);
    for r in &install.reports {
        println!(
            "  {:<18} NRMSE {:.3}  est. mean speedup {:.2}x  (eval {:.1} us)",
            r.kind.name(),
            r.test_nrmse,
            r.est_mean_speedup,
            r.eval_time_us
        );
    }

    // 3. Persist the two artefacts (config + model), like the paper's
    //    install step, then reload them as a runtime handle.
    let artifact = install.to_artifact();
    let path = std::env::temp_dir().join("adsala_quickstart.json");
    artifact.save(&path).expect("save artifact");
    println!("artifact saved to {}", path.display());
    let mut gemm = adsala::Artifact::load(&path).expect("load artifact").into_runtime();

    // 4. Ask for thread decisions. Note the small/skewed shapes avoiding
    //    the 96-thread maximum.
    for (m, k, n) in [(64, 2048, 64), (64, 64, 4096), (4000, 4000, 4000)] {
        let d = gemm.select_threads(m, k, n);
        println!(
            "GEMM {m}x{k}x{n}: chose {} threads (predicted {:.3} ms)",
            d.threads(),
            d.predicted_runtime_s * 1e3
        );
    }

    // 5. Execute a real SGEMM on this machine with the chosen count
    //    (clamped to the host's cores).
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as u32;
    let (m, k, n) = (256usize, 512usize, 256usize);
    let a = vec![1.0f32; m * k];
    let b = vec![0.5f32; k * n];
    let mut c = vec![0.0f32; m * n];
    let (decision, stats) = gemm
        .sgemm_host(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n, host_cores)
        .expect("well-formed sgemm");
    println!(
        "host SGEMM {m}x{k}x{n}: ML chose {} threads, ran on {} ({} kernel calls, {:.2} MB packed)",
        decision.threads(),
        stats.exec.threads_used,
        stats.exec.kernel_calls,
        stats.exec.packed_bytes() as f64 / 1e6
    );
    assert!((c[0] - k as f32 * 0.5).abs() < 1e-2);
    println!("result verified. done.");
}
