//! The paper's motivating workload: small/irregular GEMMs from
//! convolution lowering (ResNet uses GEMMs with operands like 64×3000 —
//! §I). A training step calls the same-shaped GEMM thousands of times, so
//! ADSALA's memoisation amortises the model evaluation to (near) zero.
//!
//! ```sh
//! cargo run --release --example resnet_conv
//! ```

use adsala::install::{InstallConfig, Installation};
use adsala_machine::{GemmTimer, MachineModel, SimTimer};
use adsala_sampling::GemmShape;

/// im2col-lowered convolution GEMM shapes of a ResNet-ish forward pass:
/// (output pixels × patch) · (patch × filters).
fn resnet_layer_shapes() -> Vec<(&'static str, GemmShape)> {
    vec![
        ("conv1 7x7/2", GemmShape::new(3136, 147, 64)),
        ("conv2.x 1x1", GemmShape::new(3136, 64, 64)),
        ("conv2.x 3x3", GemmShape::new(3136, 576, 64)),
        ("conv3.x 1x1", GemmShape::new(784, 128, 128)),
        ("conv3.x 3x3", GemmShape::new(784, 1152, 128)),
        ("conv4.x 3x3", GemmShape::new(196, 2304, 256)),
        ("conv5.x 3x3", GemmShape::new(49, 4608, 512)),
        ("fc 64x3000", GemmShape::new(64, 3000, 1000)),
    ]
}

fn main() {
    let timer = SimTimer::new(MachineModel::gadi());
    println!("training ADSALA for {}...", timer.name());
    let install = Installation::run(&timer, &InstallConfig::quick()).expect("install");
    let mut gemm = install.into_runtime();
    let p_max = timer.max_threads();

    println!("\nper-layer thread choices and simulated speedups (batch of 100 calls):");
    println!(
        "{:<14} {:>18} {:>8} {:>14} {:>14} {:>9}",
        "layer", "m x k x n", "threads", "t(max) ms", "t(ML) ms", "speedup"
    );
    let mut total_max = 0.0;
    let mut total_ml = 0.0;
    for (name, shape) in resnet_layer_shapes() {
        let calls = 100;
        let t_max = timer.time(shape, p_max, 5) * calls as f64;
        // First call evaluates the model; the next 99 hit the memo.
        let d = gemm.select_threads(shape.m, shape.k, shape.n);
        for _ in 1..calls {
            let again = gemm.select_threads(shape.m, shape.k, shape.n);
            assert!(again.memoised, "repeated shape must hit the memo");
        }
        let t_ml = timer.time(shape, d.threads(), 5) * calls as f64;
        total_max += t_max;
        total_ml += t_ml;
        println!(
            "{:<14} {:>18} {:>8} {:>14.3} {:>14.3} {:>8.2}x",
            name,
            format!("{}x{}x{}", shape.m, shape.k, shape.n),
            d.threads(),
            t_max * 1e3,
            t_ml * 1e3,
            t_max / t_ml
        );
    }
    println!(
        "\nwhole pass: {:.1} ms with max threads, {:.1} ms with ADSALA ({:.2}x), {} model evaluations for {} GEMM calls",
        total_max * 1e3,
        total_ml * 1e3,
        total_max / total_ml,
        gemm.evaluations,
        resnet_layer_shapes().len() * 100
    );
}
