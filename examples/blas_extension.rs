//! The paper's future work, realised: ML-driven thread selection for
//! BLAS routines beyond GEMM (SYRK and GEMV).
//!
//! Each routine maps its dimensions into the GEMM feature space
//! (SYRK `(m,k)` ↦ `GemmShape{m,k,m}`, GEMV `(m,n)` ↦ `GemmShape{m,n,1}`),
//! so the *unchanged* ADSALA installation pipeline trains a per-routine
//! thread selector.
//!
//! ```sh
//! cargo run --release --example blas_extension
//! ```

use adsala::install::{InstallConfig, Installation};
use adsala_machine::{BlasOp, GemmTimer, MachineModel, OpTimer};
use adsala_sampling::GemmShape;

fn main() {
    let base = MachineModel::setonix();
    for op in [BlasOp::Syrk, BlasOp::Gemv] {
        let timer = OpTimer::new(base.clone(), op);
        println!("=== {} ===", timer.name());
        let install = Installation::run(&timer, &InstallConfig::quick()).expect("install");
        println!("selected model family: {:?}", install.selected);
        let mut runtime = install.into_runtime();
        let p_max = timer.max_threads();

        // Probe shapes, given in each routine's own dimension convention
        // and mapped to the GEMM feature space as at training time.
        let probes: Vec<(String, GemmShape)> = match op {
            BlasOp::Syrk => [(2000u64, 2000u64), (4000, 200), (200, 4000), (500, 500)]
                .iter()
                .map(|&(m, k)| (format!("SYRK m={m} k={k}"), GemmShape::new(m, k, m)))
                .collect(),
            BlasOp::Gemv => [(8000u64, 8000u64), (30_000, 500), (500, 30_000), (1000, 1000)]
                .iter()
                .map(|&(m, n)| (format!("GEMV m={m} n={n}"), GemmShape::new(m, n, 1)))
                .collect(),
            BlasOp::Gemm => unreachable!(),
        };

        println!(
            "{:<22} {:>8} {:>14} {:>14} {:>9}",
            "routine", "threads", "t(max) us", "t(ML) us", "speedup"
        );
        for (label, shape) in probes {
            let d = runtime.select_threads(shape.m, shape.k, shape.n);
            let t_max = timer.time(shape, p_max, 5);
            let t_ml = timer.time(shape, d.threads(), 5);
            println!(
                "{:<22} {:>8} {:>14.1} {:>14.1} {:>8.2}x",
                label,
                d.threads(),
                t_max * 1e6,
                t_ml * 1e6,
                t_max / t_ml
            );
        }
        println!();
    }
    println!("note how GEMV selections cluster at the bandwidth knee (tens of threads),");
    println!("while SYRK behaves like GEMM — per-routine response curves are exactly why");
    println!("the paper proposes per-routine models.");
}
