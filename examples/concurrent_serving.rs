//! Concurrent serving: one shared `AdsalaService` answering GEMM traffic
//! from several client threads at once.
//!
//! This is the ROADMAP's production shape in miniature: install once,
//! bundle the artefacts, then serve `sgemm` through a `Send + Sync`
//! handle whose execution runs on a persistent thread pool (no per-call
//! OS-thread spawning) and whose decisions come from a lock-striped,
//! capacity-bounded memo.
//!
//! ```sh
//! cargo run --release --example concurrent_serving
//! ```

use std::sync::Arc;

use adsala::install::{InstallConfig, Installation};
use adsala::{AdsalaService, ServiceConfig};
use adsala_machine::{MachineModel, SimTimer};

fn main() {
    // 1. Install on the simulated Gadi node and keep only the immutable
    //    artefact bundle (config + model + candidate ladder).
    let timer = SimTimer::new(MachineModel::gadi());
    println!("installing on {} ...", adsala_machine::GemmTimer::name(&timer));
    let install = Installation::run(&timer, &InstallConfig::quick()).expect("install");
    println!("selected model family: {:?}", install.selected);
    let bundle = install.into_bundle().into_shared();

    // 2. Stand up the serving layer: a persistent GEMM pool plus a
    //    sharded decision cache, all behind one shareable handle.
    let service = AdsalaService::with_config(
        Arc::clone(&bundle),
        ServiceConfig {
            pool_workers: 0,
            cache_shards: 8,
            cache_capacity: 1024,
            ..ServiceConfig::default()
        },
    );
    println!(
        "service up: {} pool workers, {} candidate thread counts",
        service.pool_workers(),
        service.candidates().len()
    );

    // 3. Hammer it from several clients with overlapping shape streams.
    //    Every client checks its own results against the closed form for
    //    these constant operands: C[i][j] = k * 1.0 * 0.5.
    let n_clients = 4u64;
    let calls_per_client = 24u64;
    let shapes: [(usize, usize, usize); 6] =
        [(64, 256, 64), (96, 96, 96), (32, 512, 48), (128, 64, 128), (48, 48, 48), (80, 160, 40)];
    std::thread::scope(|scope| {
        for client in 0..n_clients {
            let service = &service;
            scope.spawn(move || {
                for i in 0..calls_per_client {
                    let (m, k, n) = shapes[((i + client) % shapes.len() as u64) as usize];
                    let a = vec![1.0f32; m * k];
                    let b = vec![0.5f32; k * n];
                    let mut c = vec![0.0f32; m * n];
                    let (decision, stats) = service
                        .sgemm(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n, 8)
                        .expect("well-formed sgemm");
                    assert!(
                        service.candidates().contains(&decision.threads()),
                        "decision escaped the ladder"
                    );
                    assert!(stats.exec.threads_used >= 1);
                    let expected = k as f32 * 0.5;
                    assert!(
                        c.iter().all(|&v| (v - expected).abs() <= 1e-2 * expected),
                        "client {client}: wrong product for {m}x{k}x{n}"
                    );
                }
            });
        }
    });
    println!("{} clients x {} GEMMs served and verified", n_clients, calls_per_client);

    // 4. Inspect the serving diagnostics.
    let stats = service.cache_stats();
    println!(
        "cache: {} hits / {} misses ({:.0}% hit rate), {} evictions, {}/{} entries, {} shards",
        stats.hits,
        stats.misses,
        100.0 * stats.hit_rate(),
        stats.evictions,
        stats.entries,
        stats.capacity,
        stats.shards
    );
    println!("model sweeps: {}", service.evaluations());
    assert_eq!(stats.lookups(), n_clients * calls_per_client, "every call is one lookup");
    assert!(stats.hits > 0, "overlapping streams must hit the memo");
    println!("done.");
}
