//! Grid install smoke: train over a reduced execution-plan grid
//! (threads × packing) on the simulated Gadi node, round-trip the
//! versioned artefact, and serve full-plan decisions plus one real host
//! GEMM.
//!
//! This is the CI guard for the plan-candidate machinery: gathering over
//! a non-degenerate `PlanGrid`, appending the plan axes to the feature
//! vector, persisting the grid inside the artefact, and executing the
//! selected `ExecutionPlan` end to end.
//!
//! ```sh
//! cargo run --release --example grid_install
//! ```

use adsala::install::{InstallConfig, Installation};
use adsala::prelude::*;
use adsala_gemm::dispatch::{GemmArgs, OpRequest};
use adsala_machine::{MachineModel, SimTimer};

fn main() {
    let timer = SimTimer::new(MachineModel::gadi());

    // A reduced grid keeps the sweep cheap (2 plan axes) while still
    // exercising plan features and non-default candidate points.
    let mut cfg = InstallConfig::quick();
    cfg.gather.n_shapes = 120;
    cfg.gather.grid = Some(PlanGrid::reduced(vec![1, 8, 24, 96]));
    println!("installing over a reduced plan grid (threads x packing)...");
    let install = Installation::run(&timer, &cfg).expect("grid install");
    assert!(!install.grid.is_threads_only(), "the gathered grid must keep its plan axes");
    assert!(install.grid.plan_features, "grid gathering must enable plan features");
    println!(
        "selected {:?} over {} candidate plans per shape",
        install.selected,
        install.grid.len()
    );

    // The grid must survive the artefact round trip at the current schema.
    let artifact = install.to_artifact();
    let json = artifact.to_json().expect("serialise");
    assert!(json.contains(&format!("\"version\":{}", Artifact::VERSION)));
    let back = Artifact::from_json(&json).expect("artefact round trip");
    assert!(!back.grid.is_threads_only(), "the reloaded artefact keeps the plan grid");

    // Serve decisions: full plans, not just thread counts.
    let service = back.into_service();
    let mut non_default = 0usize;
    for (m, k, n) in [(64u64, 2048, 64), (64, 64, 4096), (1000, 500, 1000), (4000, 4000, 4000)] {
        let d = service.select_threads(m, k, n);
        non_default += usize::from(!d.plan.is_threads_only());
        println!(
            "GEMM {m}x{k}x{n}: [{}] predicted {:.3} ms",
            d.plan.describe(),
            d.predicted_runtime_s * 1e3
        );
    }
    println!("{non_default} of 4 decisions moved a non-thread plan axis");

    // Execute one real host GEMM under the learned plan; whatever the
    // model chose must run correctly (degrading to scalar if forced).
    let (m, n, k) = (160usize, 128, 192);
    let a: Vec<f32> = (0..m * k).map(|i| ((i % 7) as f32 - 3.0) * 0.5).collect();
    let b: Vec<f32> = (0..k * n).map(|i| ((i % 5) as f32 - 2.0) * 0.25).collect();
    let mut c = vec![0.0f32; m * n];
    let mut req: OpRequest<'_, f32> =
        GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
    let (d, stats) = service.run(&mut req).expect("well-formed sgemm");
    println!(
        "host SGEMM {m}x{k}x{n}: requested [{}], executed isa={} degraded={}",
        d.plan.describe(),
        stats.exec.kernel_isa,
        stats.plan_degraded
    );
    let expected: f32 =
        (0..k).map(|p| ((p % 7) as f32 - 3.0) * 0.5 * (((p * n) % 5) as f32 - 2.0) * 0.25).sum();
    assert!(
        (c[0] - expected).abs() <= 1e-3 * (1.0 + expected.abs()),
        "c[0]={} expected={expected}",
        c[0]
    );
    println!("result verified. done.");
}
