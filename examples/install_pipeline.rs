//! Walk through the full installation workflow (the paper's Fig. 2) step
//! by step on the simulated Setonix node, printing what each stage does:
//! domain sampling, timing collection, preprocessing, per-family tuning,
//! and speedup-based model selection.
//!
//! ```sh
//! cargo run --release --example install_pipeline
//! ```

use adsala::feature_names;
use adsala::gather::{GatherConfig, TrainingData};
use adsala::install::{InstallConfig, Installation};
use adsala::preprocess::fit_preprocess;
use adsala_machine::{GemmTimer, MachineModel, SimTimer};
use adsala_sampling::Precision;

fn main() {
    let timer = SimTimer::new(MachineModel::setonix());
    println!("=== ADSALA installation on {} ===\n", timer.name());

    // --- Stage 1: data gathering -------------------------------------
    let gather_cfg = GatherConfig { n_shapes: 200, reps: 3, ..GatherConfig::quick() };
    println!(
        "stage 1 — gathering: {} Halton shapes <= {} MB, {} reps each",
        gather_cfg.n_shapes,
        gather_cfg.cap.bytes / 1_000_000,
        gather_cfg.reps
    );
    let data = TrainingData::gather(&timer, &gather_cfg);
    println!(
        "  -> {} timed configurations over a {}-rung thread ladder (max {})",
        data.len(),
        data.ladder.len(),
        data.max_threads
    );
    let small = data.shapes.iter().filter(|s| s.memory_bytes(Precision::F32) < 100_000_000).count();
    println!("  -> {small} of {} shapes sit in the 0-100 MB band", data.shapes.len());
    let optimal = data.optimal_threads();
    let sub_half = optimal.iter().filter(|(_, p)| *p < data.max_threads / 2).count();
    println!(
        "  -> measured-optimal thread count below half max for {sub_half}/{} shapes",
        optimal.len()
    );

    // --- Stage 2: preprocessing ---------------------------------------
    println!("\nstage 2 — preprocessing (Yeo-Johnson -> scale -> LOF -> corr-prune):");
    let fitted = fit_preprocess(&data).expect("preprocess");
    println!(
        "  -> {} rows in, {} after LOF outlier removal",
        fitted.report.rows_in, fitted.report.rows_after_lof
    );
    let kept: Vec<&str> = fitted.report.features_kept.iter().map(|&i| feature_names()[i]).collect();
    println!(
        "  -> {} of {} features survive correlation pruning: {:?}",
        kept.len(),
        fitted.report.features_in,
        kept
    );

    // --- Stage 3+4: tuning and selection -------------------------------
    println!("\nstage 3 — tuning model families (this is the slow part)...");
    let install = Installation::run(&timer, &InstallConfig::quick()).expect("install");
    println!("\nstage 4 — speedup-based selection:");
    println!(
        "{:<18} {:>8} {:>12} {:>10} {:>10}",
        "model", "NRMSE", "ideal-mean", "eval-us", "est-mean"
    );
    for r in &install.reports {
        println!(
            "{:<18} {:>8.3} {:>12.3} {:>10.2} {:>10.3}",
            r.kind.name(),
            r.test_nrmse,
            r.ideal_mean_speedup,
            r.eval_time_us,
            r.est_mean_speedup
        );
    }
    println!("\nwinner: {:?} — refitted on the full dataset and bundled", install.selected);

    let artifact = install.to_artifact();
    let json = artifact.to_json().expect("serialise");
    println!(
        "artifact: {} bytes of JSON (config + trained model), {} candidate thread counts",
        json.len(),
        artifact.candidates().len()
    );
}
