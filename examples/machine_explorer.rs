//! Explore the simulated HPC node models: wall-time decomposition across
//! thread counts, affinity policies, and the shapes behind the paper's
//! headline observations.
//!
//! ```sh
//! cargo run --release --example machine_explorer [setonix|gadi]
//! ```

use adsala_machine::{Affinity, MachineModel, Placement};
use adsala_sampling::GemmShape;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "gadi".into());
    let model = match which.as_str() {
        "setonix" => MachineModel::setonix(),
        _ => MachineModel::gadi(),
    };
    let topo = &model.topology;
    println!("=== {} ===", topo.name);
    println!(
        "{} sockets x {} cores x SMT-{} = {} hardware threads",
        topo.sockets,
        topo.cores_per_socket,
        topo.smt,
        topo.total_threads()
    );
    println!(
        "{} NUMA domains, {:.0} GB/s per socket, {:.1} TFLOP/s f32 node peak\n",
        topo.numa_per_socket * topo.sockets,
        topo.socket_bw() / 1e9,
        topo.total_cores() as f64 * topo.core_peak_flops(topo.freq_allcore_hz) / 1e12
    );

    // Wall-time anatomy across thread counts for three contrasting shapes.
    for (label, shape) in [
        ("large square 4000^3", GemmShape::new(4000, 4000, 4000)),
        ("small square 256^3", GemmShape::new(256, 256, 256)),
        ("skewed 64x2048x64", GemmShape::new(64, 2048, 64)),
    ] {
        println!("--- {label} ---");
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>12} {:>10}",
            "threads", "total (ms)", "kernel (ms)", "copy (ms)", "sync (ms)", "GFLOPS"
        );
        let mut p = 1;
        while p <= model.max_threads() {
            let c = model.expected(shape, p);
            println!(
                "{:>8} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>10.1}",
                p,
                c.total() * 1e3,
                c.kernel_s * 1e3,
                c.copy_s * 1e3,
                (c.sync_s + c.spawn_s) * 1e3,
                shape.flops() as f64 / c.total() / 1e9
            );
            p *= 2;
        }
        let opt = model.optimal_threads(shape);
        println!("optimal: {} threads ({:.3} ms)\n", opt, model.expected(shape, opt).total() * 1e3);
    }

    // Where do threads land under each affinity policy?
    println!("--- thread placement ---");
    println!("{:>8} {:>22} {:>22}", "threads", "core-based", "thread-based");
    let mut p = 2;
    while p <= model.max_threads() {
        let a = Placement::place(topo, p, Affinity::CoreBased);
        let b = Placement::place(topo, p, Affinity::ThreadBased);
        let fmt = |pl: Placement| {
            format!("{}c/{}s occ {:.2}", pl.cores_used, pl.sockets_used, pl.smt_occupancy)
        };
        println!("{:>8} {:>22} {:>22}", p, fmt(a), fmt(b));
        p *= 4;
    }
}
