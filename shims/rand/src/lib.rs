//! Offline stand-in for `rand` 0.8, used because crates.io is unreachable
//! in this build environment.
//!
//! Provides the exact surface the workspace consumes: `StdRng` seeded via
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range}`, and
//! `seq::SliceRandom::shuffle`. The generator is xoshiro256++ seeded by
//! SplitMix64 — deterministic and platform-independent, which is what the
//! reproduction's pinned-seed pipelines rely on. Streams differ from real
//! `rand`'s, which is fine: every consumer lives in this workspace.

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (`lo..hi`, or `lo..=hi` for ints).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generator construction.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Standard distribution of a type (`rng.gen::<T>()`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// A range that `gen_range` can sample from.
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform integer in `[0, span)` by widening multiply (Lemire reduction,
/// without the rejection step — bias is ≤ span/2⁶⁴, irrelevant here).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

pub mod seq {
    use super::{uniform_below, RngCore};

    /// Slice extension methods (`shuffle`).
    pub trait SliceRandom {
        /// Deterministic Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left the slice sorted");
    }
}
