//! Offline stand-in for `criterion`, used because crates.io is unreachable
//! in this build environment.
//!
//! Implements the group/bench API surface the workspace's benches use and
//! measures with plain wall-clock timing: a short warm-up, then batches
//! until a fixed time budget (scaled down by `sample_size`) is spent.
//! There is no statistical analysis or HTML report — results print as
//! one line per benchmark, with throughput rates when configured.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

pub use hint::black_box;

/// Throughput basis for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { repr: format!("{function_name}/{parameter}") }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { repr: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.repr)
    }
}

/// Benchmark driver handed to bench closures; call [`Bencher::iter`].
pub struct Bencher {
    budget: Duration,
    test_mode: bool,
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Time `routine` repeatedly and record the mean iteration time.
    ///
    /// In `--test` mode (like real criterion's smoke mode) the routine
    /// runs exactly once — enough to prove the bench executes — and the
    /// single timing is recorded.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            let start = Instant::now();
            hint::black_box(routine());
            self.measured = Some((start.elapsed(), 1));
            return;
        }
        // Warm-up: one untimed call (also triggers lazy setup).
        hint::black_box(routine());
        let mut iters: u64 = 0;
        let mut elapsed = Duration::ZERO;
        let mut batch: u64 = 1;
        while elapsed < self.budget {
            let start = Instant::now();
            for _ in 0..batch {
                hint::black_box(routine());
            }
            elapsed += start.elapsed();
            iters += batch;
            // Grow batches so cheap routines are not timer-bound.
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        self.measured = Some((elapsed, iters));
    }
}

/// `cargo bench -- --test` puts the harness in smoke mode: every bench
/// body runs once so CI can catch panicking or bit-rotted benches
/// without paying for real measurements.
fn test_mode_from_args() -> bool {
    std::env::args().any(|arg| arg == "--test")
}

/// Top-level harness handle; create groups with
/// [`Criterion::benchmark_group`].
pub struct Criterion {
    budget: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { budget: Duration::from_millis(120), test_mode: test_mode_from_args() }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            budget: self.budget,
            test_mode: self.test_mode,
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_one("", self.budget, self.test_mode, None, id, f);
    }
}

/// A named group of benchmarks sharing throughput configuration.
pub struct BenchmarkGroup {
    name: String,
    budget: Duration,
    test_mode: bool,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Set the throughput basis for subsequent benchmarks in this group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Scale the per-benchmark time budget (criterion's sample count
    /// maps onto wall-clock budget here; smaller = faster).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let n = n.max(10) as u32;
        self.budget = Duration::from_millis(u64::from(n.min(100)) * 2);
        self
    }

    /// Benchmark a closure under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_one(&self.name, self.budget, self.test_mode, self.throughput, id, f);
    }

    /// Benchmark a closure that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, self.budget, self.test_mode, self.throughput, id, |b| f(b, input));
    }

    /// Close the group (prints nothing extra; parity with criterion).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    budget: Duration,
    test_mode: bool,
    throughput: Option<Throughput>,
    id: impl Display,
    mut f: F,
) {
    let mut bencher = Bencher { budget, test_mode, measured: None };
    f(&mut bencher);
    let full_name = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    match bencher.measured {
        Some((elapsed, iters)) if iters > 0 => {
            let per_iter = elapsed.as_secs_f64() / iters as f64;
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  {:.3} Melem/s", n as f64 / per_iter / 1e6)
                }
                Some(Throughput::Bytes(n)) => {
                    format!("  {:.3} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
                }
                None => String::new(),
            };
            println!("{full_name:<48} time: {}{rate}", format_time(per_iter));
        }
        _ => println!("{full_name:<48} (no measurement: Bencher::iter not called)"),
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running each collected group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; this shim ignores
            // every CLI argument.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion { budget: Duration::from_millis(5), test_mode: false };
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(1000));
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &x| b.iter(|| x * 2));
        group.finish();
    }

    #[test]
    fn test_mode_runs_each_bench_exactly_once() {
        let mut c = Criterion { budget: Duration::from_millis(5), test_mode: true };
        let mut calls = 0u32;
        let mut group = c.benchmark_group("smoke");
        group.bench_function("once", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 1, "--test mode must execute the body once, not measure");
    }
}
