//! Offline stand-in for `serde_json`: renders and parses the [`serde`]
//! shim's [`Value`] tree as JSON text.
//!
//! Output is valid JSON. Floats use Rust's shortest round-trip formatting,
//! so `to_string` → `from_str` reproduces every finite `f64` bit-exactly.

use serde::{Deserialize, Serialize, Value};

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

// ------------------------------------------------------------- rendering

fn render(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        // Debug formatting of finite floats is shortest-round-trip and
        // always a valid JSON number (e.g. `1.0`, `3.14`, `1e-9`).
        Value::F64(f) => out.push_str(&format!("{f:?}")),
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(k, out);
                out.push(':');
                render(val, out);
            }
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, got as char
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.eat_keyword("null").map(|()| Value::Null),
            b't' => self.eat_keyword("true").map(|()| Value::Bool(true)),
            b'f' => self.eat_keyword("false").map(|()| Value::Bool(false)),
            b'"' => self.parse_string().map(Value::Str),
            b'[' => self.parse_seq(),
            b'{' => self.parse_map(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` in array, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            entries.push((key, self.parse_value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` in object, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let b = self
                .bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a low-half `\uXXXX`.
                                self.eat_keyword("\\u")?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("unpaired surrogate escape"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume the full UTF-8 scalar starting at `pos - 1`.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    let text = std::str::from_utf8(chunk)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    s.push_str(text);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        self.pos += 4;
        let text = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid \\u escape"))?;
        u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::I64(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::F64)
                    .map_err(|_| Error::new(format!("invalid number `{text}`"))),
            }
        } else {
            match text.parse::<u64>() {
                Ok(u) => Ok(Value::U64(u)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::F64)
                    .map_err(|_| Error::new(format!("invalid number `{text}`"))),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let v = Value::Seq(vec![
            Value::Null,
            Value::Bool(true),
            Value::I64(-42),
            Value::U64(18_446_744_073_709_551_615),
            Value::F64(0.1),
            Value::F64(1e-300),
            Value::Str("hi \"there\"\n\u{1F600}".to_string()),
        ]);
        let mut s = String::new();
        render(&v, &mut s);
        let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
        assert_eq!(p.parse_value().unwrap(), v);
    }

    #[test]
    fn malformed_surrogate_escapes_error_cleanly() {
        assert!(from_str::<String>(r#""\ud800\u0041""#).is_err(), "low half below 0xDC00");
        assert!(from_str::<String>(r#""\ud800A""#).is_err(), "high half not followed by \\u");
        assert!(from_str::<String>(r#""\ud800""#).is_err(), "lone high surrogate");
        assert!(from_str::<String>(r#""\udc00""#).is_err(), "lone low surrogate");
        let ok: String = from_str(r#""😀""#).expect("valid pair");
        assert_eq!(ok, "\u{1F600}");
    }

    #[test]
    fn parses_nested_objects() {
        let got: Vec<(String, f64)> = from_str(r#"[["a", 1.5], ["b", -2.0]]"#).expect("parse");
        assert_eq!(got, vec![("a".to_string(), 1.5), ("b".to_string(), -2.0)]);
    }
}
