//! Offline stand-in for `proptest`, used because crates.io is unreachable
//! in this build environment.
//!
//! Implements the slice of the API the workspace's property tests use:
//! the `proptest!` macro (with `#![proptest_config(...)]`), numeric range
//! and `prop::bool::ANY` strategies, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! corpus: each test's case stream is derived purely from a fixed global
//! seed and the test's name, so runs are deterministic on every platform —
//! exactly what a CI tier-1 gate wants. A failing case reports its inputs;
//! re-running reproduces it because the stream never changes.

/// Per-test configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property; produced by the `prop_assert*` macros.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Record a failed assertion.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Deterministic per-test random stream (SplitMix64 over an FNV-1a hash
/// of the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Stream seeded from the test's name; identical on every run.
    pub fn deterministic(test_name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Generates values of `Self::Value` from the test's random stream.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.abs_diff(self.start) as u64;
                let offset = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start.wrapping_add(offset as $t)
            }
        }
    )*};
}

impl_int_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.next_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

pub mod prop {
    pub mod bool {
        /// Strategy producing uniformly random booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct BoolStrategy;

        /// Either boolean, equiprobable.
        pub const ANY: BoolStrategy = BoolStrategy;

        impl crate::Strategy for BoolStrategy {
            type Value = bool;

            fn sample(&self, rng: &mut crate::TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError, TestRng};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        #[test]
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&$strategy, &mut rng);)+
                let described = ::std::format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $($arg),+
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    ::std::panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1,
                        config.cases,
                        e,
                        described
                    );
                }
            }
        }
    )*};
}

/// Assert a property inside `proptest!`; failure aborts only this case
/// with a report of the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside `proptest!` with a `Debug` report on mismatch.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)*),
            l,
            r
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn streams_are_stable_across_instances() {
        let mut a = TestRng::deterministic("some_test");
        let mut b = TestRng::deterministic("some_test");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_honour_bounds(x in 5usize..10, f in -1.0f64..1.0, b in prop::bool::ANY) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(usize::from(b) <= 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..3) {
            prop_assert_eq!(x, x);
        }
    }
}
