//! Offline stand-in for `parking_lot`, used because crates.io is
//! unreachable in this build environment.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns the guard directly, and `Condvar::wait` takes the
//! guard by `&mut`. Poisoned std locks are recovered with `into_inner`
//! rather than propagated, matching parking_lot's no-poisoning semantics.

use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Acquire the lock, recovering (not propagating) poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner) }
    }

    /// Acquire the lock only if it is free right now. Returns `None` on
    /// contention (parking_lot returns an `Option`, not a `Result`).
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard { inner: p.into_inner() }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock whose acquisition never returns a poison error.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Acquire shared read access, recovering (not propagating) poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(sync::PoisonError::into_inner) }
    }

    /// Acquire exclusive write access, recovering poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(sync::PoisonError::into_inner) }
    }
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable matching parking_lot's `&mut guard` wait API.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Atomically release the lock and block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's wait consumes and returns the guard; parking_lot's mutates
        // it in place. Bridge the two by moving the guard out and back.
        //
        // SAFETY: `guard` is exclusively borrowed and the moved-out value
        // is overwritten via `ptr::write` before anyone can observe the
        // hole. std's `Condvar::wait` can still unwind (e.g. if a condvar
        // is paired with two different mutexes); unwinding past the hole
        // would double-drop the guard, so an abort guard turns that into
        // a process abort instead of UB. Poisoning is recovered, not
        // propagated.
        struct AbortOnUnwind;
        impl Drop for AbortOnUnwind {
            fn drop(&mut self) {
                std::process::abort();
            }
        }
        unsafe {
            let taken = std::ptr::read(&guard.inner);
            let bomb = AbortOnUnwind;
            let reacquired = self.inner.wait(taken).unwrap_or_else(sync::PoisonError::into_inner);
            std::mem::forget(bomb);
            std::ptr::write(&mut guard.inner, reacquired);
        }
    }

    /// Atomically release the lock and block until notified or until
    /// `timeout` elapses, matching parking_lot's `wait_for`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        // Same guard-bridging scheme as `wait` above; see its SAFETY note.
        struct AbortOnUnwind;
        impl Drop for AbortOnUnwind {
            fn drop(&mut self) {
                std::process::abort();
            }
        }
        unsafe {
            let taken = std::ptr::read(&guard.inner);
            let bomb = AbortOnUnwind;
            let (reacquired, result) = match self.inner.wait_timeout(taken, timeout) {
                Ok((g, r)) => (g, r),
                Err(poisoned) => {
                    let (g, r) = poisoned.into_inner();
                    (g, r)
                }
            };
            std::mem::forget(bomb);
            std::ptr::write(&mut guard.inner, reacquired);
            WaitTimeoutResult { timed_out: result.timed_out() }
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Whether a [`Condvar::wait_for`] returned because the timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` if the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::{Condvar, Mutex, RwLock};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn rwlock_readers_share_writers_exclude() {
        let l = RwLock::new(7usize);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 14);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 8);
    }

    #[test]
    fn lock_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(5);
        let g = m.try_lock().expect("uncontended try_lock succeeds");
        assert_eq!(*g, 5);
        assert!(m.try_lock().is_none(), "second try_lock must fail while held");
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn wait_for_times_out_without_notification() {
        let state = (Mutex::new(false), Condvar::new());
        let mut flag = state.0.lock();
        let r = state.1.wait_for(&mut flag, Duration::from_millis(10));
        assert!(r.timed_out());
        assert!(!*flag);
    }

    #[test]
    fn wait_for_wakes_on_notify() {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                let (lock, cv) = &*state;
                let mut done = lock.lock();
                while !*done {
                    cv.wait_for(&mut done, Duration::from_secs(5));
                }
                true
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        *state.0.lock() = true;
        state.1.notify_all();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let state = Arc::new((Mutex::new(0usize), Condvar::new()));
        let waiter = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                let (lock, cv) = &*state;
                let mut count = lock.lock();
                while *count < 3 {
                    cv.wait(&mut count);
                }
                *count
            })
        };
        let (lock, cv) = &*state;
        for _ in 0..3 {
            *lock.lock() += 1;
            cv.notify_all();
        }
        assert_eq!(waiter.join().unwrap(), 3);
    }
}
