//! Offline stand-in for `parking_lot`, used because crates.io is
//! unreachable in this build environment.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns the guard directly, and `Condvar::wait` takes the
//! guard by `&mut`. Poisoned std locks are recovered with `into_inner`
//! rather than propagated, matching parking_lot's no-poisoning semantics.

use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Acquire the lock, recovering (not propagating) poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner) }
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock whose acquisition never returns a poison error.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Acquire shared read access, recovering (not propagating) poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(sync::PoisonError::into_inner) }
    }

    /// Acquire exclusive write access, recovering poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(sync::PoisonError::into_inner) }
    }
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable matching parking_lot's `&mut guard` wait API.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Atomically release the lock and block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's wait consumes and returns the guard; parking_lot's mutates
        // it in place. Bridge the two by moving the guard out and back.
        //
        // SAFETY: `guard` is exclusively borrowed and the moved-out value
        // is overwritten via `ptr::write` before anyone can observe the
        // hole. std's `Condvar::wait` can still unwind (e.g. if a condvar
        // is paired with two different mutexes); unwinding past the hole
        // would double-drop the guard, so an abort guard turns that into
        // a process abort instead of UB. Poisoning is recovered, not
        // propagated.
        struct AbortOnUnwind;
        impl Drop for AbortOnUnwind {
            fn drop(&mut self) {
                std::process::abort();
            }
        }
        unsafe {
            let taken = std::ptr::read(&guard.inner);
            let bomb = AbortOnUnwind;
            let reacquired = self.inner.wait(taken).unwrap_or_else(sync::PoisonError::into_inner);
            std::mem::forget(bomb);
            std::ptr::write(&mut guard.inner, reacquired);
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::{Condvar, Mutex, RwLock};
    use std::sync::Arc;

    #[test]
    fn rwlock_readers_share_writers_exclude() {
        let l = RwLock::new(7usize);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 14);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 8);
    }

    #[test]
    fn lock_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let state = Arc::new((Mutex::new(0usize), Condvar::new()));
        let waiter = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                let (lock, cv) = &*state;
                let mut count = lock.lock();
                while *count < 3 {
                    cv.wait(&mut count);
                }
                *count
            })
        };
        let (lock, cv) = &*state;
        for _ in 0..3 {
            *lock.lock() += 1;
            cv.notify_all();
        }
        assert_eq!(waiter.join().unwrap(), 3);
    }
}
