//! Offline stand-in for `serde`, used because crates.io is unreachable in
//! this build environment.
//!
//! Real serde is a zero-cost visitor framework; this shim is a small
//! value-tree model: `Serialize` lowers to a [`Value`], `Deserialize`
//! lifts from one. `serde_json` (also shimmed) renders/parses that tree.
//! The API surface is exactly what the workspace needs — derive macros,
//! the two traits, and impls for the std types that appear in artefacts.
//!
//! Deliberate divergences from real serde, acceptable because every
//! producer and consumer lives in this workspace:
//! * maps serialize as `[[key, value], ...]` pairs (tuple keys are legal),
//! * non-finite floats serialize as `null` and deserialize back as NaN.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing tree of data — the interchange format between the
/// `Serialize` and `Deserialize` traits and the `serde_json` shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(String, Value)>),
}

/// Serialization error (also reused by deserialization helpers).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Lower `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Derive-internal helper: look up a struct field and deserialize it.
pub fn __get_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v {
        Value::Map(entries) => match entries.iter().find(|(k, _)| k == name) {
            Some((_, field)) => T::from_value(field),
            None => Err(Error::custom(format!("missing field `{name}`"))),
        },
        other => Err(Error::custom(format!("expected map with field `{name}`, got {other:?}"))),
    }
}

// ------------------------------------------------------------- primitives

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide = match v {
                    Value::I64(i) => *i,
                    Value::U64(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom("unsigned value overflows"))?,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| {
                    Error::custom(format!(
                        "integer {wide} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide = match v {
                    Value::U64(u) => *u,
                    Value::I64(i) => u64::try_from(*i)
                        .map_err(|_| Error::custom("negative value for unsigned"))?,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| {
                    Error::custom(format!(
                        "integer {wide} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, isize);
impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = f64::from(*self);
                if f.is_finite() { Value::F64(f) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::I64(i) => Ok(*i as $t),
                    Value::U64(u) => Ok(*u as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::custom(format!(
                        "expected float, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// Identity impls: a `Value` (de)serializes as itself, so callers can parse
// a document into the raw tree — e.g. to validate it for non-finite
// numbers, which the typed float impls silently map to NaN — before (or
// instead of) a typed parse.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected sequence, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = [$($idx),+].len();
                match v {
                    Value::Seq(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected {LEN}-tuple sequence, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Total order over values, used to give map serialization a stable,
/// platform-independent entry order.
fn cmp_value(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::I64(_) | Value::U64(_) | Value::F64(_) => 2,
            Value::Str(_) => 3,
            Value::Seq(_) => 4,
            Value::Map(_) => 5,
        }
    }
    fn as_f64(v: &Value) -> f64 {
        match v {
            Value::I64(i) => *i as f64,
            Value::U64(u) => *u as f64,
            Value::F64(f) => *f,
            _ => 0.0,
        }
    }
    match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        (Value::Seq(x), Value::Seq(y)) => {
            for (u, v) in x.iter().zip(y.iter()) {
                let ord = cmp_value(u, v);
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            x.len().cmp(&y.len())
        }
        (Value::Map(x), Value::Map(y)) => {
            for ((ku, u), (kv, v)) in x.iter().zip(y.iter()) {
                let ord = ku.cmp(kv).then_with(|| cmp_value(u, v));
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            x.len().cmp(&y.len())
        }
        _ if rank(a) == 2 && rank(b) == 2 => {
            as_f64(a).partial_cmp(&as_f64(b)).unwrap_or(Ordering::Equal)
        }
        _ => rank(a).cmp(&rank(b)),
    }
}

fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut pairs: Vec<Value> =
        entries.map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()])).collect();
    pairs.sort_by(cmp_value);
    Value::Seq(pairs)
}

fn map_from_value<K, V, M>(v: &Value) -> Result<M, Error>
where
    K: Deserialize,
    V: Deserialize,
    M: FromIterator<(K, V)>,
{
    match v {
        Value::Seq(items) => items
            .iter()
            .map(|entry| match entry {
                Value::Seq(kv) if kv.len() == 2 => {
                    Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                }
                other => Err(Error::custom(format!("expected [key, value] pair, got {other:?}"))),
            })
            .collect(),
        other => Err(Error::custom(format!("expected map entry sequence, got {other:?}"))),
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_from_value(v)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_from_value(v)
    }
}
