//! Offline stand-in for `crossbeam`, used because crates.io is unreachable
//! in this build environment.
//!
//! * [`scope`] wraps `std::thread::scope` behind crossbeam's
//!   `Result`-returning API (child panics surface as `Err`, not a direct
//!   unwind through the caller).
//! * [`channel::unbounded`] is an MPMC channel built from `std::sync::mpsc`
//!   with a mutex-shared receiver — the textbook worker-pool construction.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Handle passed to the [`scope`] closure; spawns borrowing threads.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. Mirrors crossbeam by handing the closure a
    /// scope reference (commonly ignored as `|_|`). The join handle is
    /// managed by the scope itself, so none is returned.
    pub fn spawn<F, T>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        self.inner.spawn(move || {
            f(&scope);
        });
    }
}

/// Create a scope for spawning threads that borrow from the caller's stack.
/// All spawned threads are joined before this returns; a panicking child
/// turns into `Err(payload)` like crossbeam's version.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| std::thread::scope(|s| f(Scope { inner: s }))))
}

pub mod channel {
    use std::sync::{mpsc, Arc, Mutex};

    /// Receiving failed: every sender was dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Sending failed: every receiver was dropped. Carries the message back.
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Producer half; clone freely across threads.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Consumer half; clone freely across threads (competing consumers).
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self.inner.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv().map_err(|_| RecvError)
        }
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: Arc::new(Mutex::new(rx)) })
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_and_borrows() {
        let mut data = vec![0u32; 4];
        let chunks: Vec<&mut u32> = data.iter_mut().collect();
        super::scope(|s| {
            for (i, slot) in chunks.into_iter().enumerate() {
                s.spawn(move |_| *slot = i as u32 + 1);
            }
        })
        .unwrap();
        assert_eq!(data, vec![1, 2, 3, 4]);
    }

    #[test]
    fn scope_reports_child_panic_as_err() {
        let result = super::scope(|s| {
            s.spawn(|_| panic!("child failure"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn channel_fans_out_to_competing_consumers() {
        let (tx, rx) = super::channel::unbounded::<usize>();
        let done = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let rx = rx.clone();
                let done = &done;
                s.spawn(move || {
                    while rx.recv().is_ok() {
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            for i in 0..30 {
                tx.send(i).unwrap();
            }
            drop(tx);
        });
        assert_eq!(done.load(Ordering::Relaxed), 30);
    }
}
