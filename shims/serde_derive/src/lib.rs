//! Offline stand-in for `serde_derive`.
//!
//! crates.io is unreachable in this environment, so the workspace ships a
//! minimal `serde` shim and this companion derive. It parses the input item
//! with the bare `proc_macro` API (no `syn`/`quote`) and emits impls of the
//! shim's value-based `Serialize`/`Deserialize` traits.
//!
//! Supported shapes — exactly what the workspace uses:
//! * structs with named fields,
//! * enums whose variants are unit, newtype (one unnamed field), or
//!   struct-like (named fields).
//!
//! Generic parameters, tuple structs, and `#[serde(...)]` attributes are
//! rejected with a compile-time panic so misuse is loud, not silent.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<String>),
}

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<(String, VariantKind)> },
}

/// Derives the serde shim's `Serialize` (a `to_value` method).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { fields, .. } => serialize_struct_body(fields),
        Item::Enum { name, variants } => serialize_enum_body(name, variants),
    };
    let name = item_name(&item);
    let code = format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, clippy::pedantic)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    code.parse().expect("derive(Serialize): generated code must parse")
}

/// Derives the serde shim's `Deserialize` (a `from_value` constructor).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => deserialize_struct_body(name, fields),
        Item::Enum { name, variants } => deserialize_enum_body(name, variants),
    };
    let name = item_name(&item);
    let code = format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, clippy::pedantic)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    );
    code.parse().expect("derive(Deserialize): generated code must parse")
}

fn item_name(item: &Item) -> &str {
    match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    }
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected item name, got {other:?}"),
    };

    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("derive on `{name}`: generic parameters are not supported by the serde shim")
        }
        other => panic!(
            "derive on `{name}`: expected a braced body (tuple/unit structs unsupported), \
             got {other:?}"
        ),
    };

    match kind.as_str() {
        "struct" => Item::Struct { name, fields: parse_named_fields(body) },
        "enum" => Item::Enum { name, variants: parse_variants(body) },
        other => panic!("derive: expected `struct` or `enum`, got `{other}`"),
    }
}

/// Split a brace-group body on commas that sit outside `<...>` nesting.
/// (Commas inside parens/brackets/braces are hidden inside `Group`s, but
/// generic-argument commas, e.g. `HashMap<K, V>`, share our token level.)
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0usize;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Pull the leading identifier out of one field/variant chunk, skipping
/// attributes and visibility.
fn leading_ident(chunk: &[TokenTree]) -> (String, usize) {
    let mut i = 0;
    loop {
        match chunk.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = chunk.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            Some(TokenTree::Ident(id)) => return (id.to_string(), i + 1),
            other => panic!("derive: expected an identifier, got {other:?}"),
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    split_top_level(body)
        .into_iter()
        .map(|chunk| {
            let (name, next) = leading_ident(&chunk);
            match chunk.get(next) {
                Some(TokenTree::Punct(p)) if p.as_char() == ':' => name,
                other => panic!(
                    "derive: field `{name}` must be a named field (`name: Type`), got {other:?}"
                ),
            }
        })
        .collect()
}

fn parse_variants(body: TokenStream) -> Vec<(String, VariantKind)> {
    split_top_level(body)
        .into_iter()
        .map(|chunk| {
            let (name, next) = leading_ident(&chunk);
            let kind = match chunk.get(next) {
                None => VariantKind::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let arity = split_top_level(g.stream()).len();
                    if arity != 1 {
                        panic!(
                            "derive: tuple variant `{name}` has {arity} fields; the serde \
                             shim only supports newtype (single-field) variants"
                        );
                    }
                    VariantKind::Newtype
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Struct(parse_named_fields(g.stream()))
                }
                other => panic!("derive: unexpected token after variant `{name}`: {other:?}"),
            };
            (name, kind)
        })
        .collect()
}

// ---------------------------------------------------------------- codegen

fn map_entries(fields: &[String], access: impl Fn(&str) -> String) -> String {
    let pushes: String = fields
        .iter()
        .map(|f| {
            format!(
                "__m.push((::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::to_value({})));",
                access(f)
            )
        })
        .collect();
    format!(
        "{{ let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new(); {pushes} ::serde::Value::Map(__m) }}"
    )
}

fn serialize_struct_body(fields: &[String]) -> String {
    map_entries(fields, |f| format!("&self.{f}"))
}

fn serialize_enum_body(name: &str, variants: &[(String, VariantKind)]) -> String {
    let arms: String = variants
        .iter()
        .map(|(v, kind)| match kind {
            VariantKind::Unit => {
                format!("{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),")
            }
            VariantKind::Newtype => format!(
                "{name}::{v}(__x) => ::serde::Value::Map(::std::vec![( \
                 ::std::string::String::from(\"{v}\"), \
                 ::serde::Serialize::to_value(__x))]),"
            ),
            VariantKind::Struct(fields) => {
                let pat: String = fields.iter().map(|f| format!("{f},")).collect();
                let inner = map_entries(fields, |f| f.to_string());
                format!(
                    "{name}::{v} {{ {pat} }} => ::serde::Value::Map(::std::vec![( \
                     ::std::string::String::from(\"{v}\"), {inner})]),"
                )
            }
        })
        .collect();
    format!("match self {{ {arms} }}")
}

fn deserialize_struct_body(name: &str, fields: &[String]) -> String {
    let inits: String =
        fields.iter().map(|f| format!("{f}: ::serde::__get_field(__v, \"{f}\")?,")).collect();
    format!("::std::result::Result::Ok({name} {{ {inits} }})")
}

fn deserialize_enum_body(name: &str, variants: &[(String, VariantKind)]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|(_, k)| matches!(k, VariantKind::Unit))
        .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter_map(|(v, kind)| match kind {
            VariantKind::Unit => None,
            VariantKind::Newtype => Some(format!(
                "\"{v}\" => ::std::result::Result::Ok({name}::{v}( \
                 ::serde::Deserialize::from_value(__inner)?)),"
            )),
            VariantKind::Struct(fields) => {
                let inits: String = fields
                    .iter()
                    .map(|f| format!("{f}: ::serde::__get_field(__inner, \"{f}\")?,"))
                    .collect();
                Some(format!("\"{v}\" => ::std::result::Result::Ok({name}::{v} {{ {inits} }}),"))
            }
        })
        .collect();
    format!(
        "match __v {{\n\
            ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                {unit_arms}\n\
                __other => ::std::result::Result::Err(::serde::Error::custom(\n\
                    ::std::format!(\"unknown unit variant `{{__other}}` for {name}\"))),\n\
            }},\n\
            ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                let (__tag, __inner) = &__entries[0];\n\
                match __tag.as_str() {{\n\
                    {tagged_arms}\n\
                    __other => ::std::result::Result::Err(::serde::Error::custom(\n\
                        ::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                }}\n\
            }}\n\
            __other => ::std::result::Result::Err(::serde::Error::custom(\n\
                ::std::format!(\"invalid value for enum {name}: {{__other:?}}\"))),\n\
        }}"
    )
}
