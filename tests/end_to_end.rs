//! Cross-crate integration: the full paper workflow from sampling to
//! runtime decisions, on both simulated machines.

use adsala_repro::adsala::install::{InstallConfig, Installation};
use adsala_repro::adsala::Artifact;
use adsala_repro::adsala_machine::{GemmTimer, MachineModel, SimTimer};
use adsala_repro::adsala_ml::ModelKind;
use adsala_repro::adsala_sampling::GemmShape;

fn quick_install(model: MachineModel) -> (SimTimer, Installation) {
    let timer = SimTimer::new(model);
    let install = Installation::run(&timer, &InstallConfig::quick()).expect("install");
    (timer, install)
}

#[test]
fn gadi_pipeline_selects_boosting_and_speeds_up() {
    let (timer, install) = quick_install(MachineModel::gadi());
    assert_eq!(install.selected, ModelKind::XgBoost);

    let mut runtime = install.into_runtime();
    // Fresh shapes never seen in training.
    let shapes = [
        GemmShape::new(100, 3000, 100),
        GemmShape::new(48, 48, 48),
        GemmShape::new(900, 900, 900),
        GemmShape::new(64, 64, 2000),
        GemmShape::new(500, 100, 4000),
    ];
    let p_max = timer.max_threads();
    let mut t_orig = 0.0;
    let mut t_ml = 0.0;
    for s in shapes {
        let d = runtime.select_threads(s.m, s.k, s.n);
        t_orig += timer.time(s, p_max, 5);
        t_ml += timer.time(s, d.threads(), 5);
    }
    let aggregate_speedup = t_orig / t_ml;
    assert!(
        aggregate_speedup > 1.2,
        "ADSALA should beat the max-thread default: {aggregate_speedup:.2}x"
    );
}

#[test]
fn setonix_pipeline_end_to_end() {
    let (timer, install) = quick_install(MachineModel::setonix());
    assert_eq!(install.max_threads, 256);
    let mut runtime = install.into_runtime();
    let small = runtime.select_threads(64, 64, 64);
    assert!(
        small.threads() < 128,
        "tiny GEMM got {} threads on a 256-thread node",
        small.threads()
    );
    let large = runtime.select_threads(4000, 4000, 4000);
    assert!(large.threads() >= 64, "large square GEMM got only {} threads", large.threads());
    let _ = timer; // timer participates via the install above
}

#[test]
fn artifact_file_roundtrip_preserves_runtime_behaviour() {
    let (_, install) = quick_install(MachineModel::gadi());
    let artifact = install.to_artifact();
    let dir = std::env::temp_dir().join("adsala-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("artifact.json");
    artifact.save(&path).expect("save");
    let restored = Artifact::load(&path).expect("load");
    std::fs::remove_file(&path).ok();

    let mut a = artifact.into_runtime();
    let mut b = restored.into_runtime();
    for (m, k, n) in [(64, 2048, 64), (128, 128, 128), (2000, 500, 300)] {
        assert_eq!(
            a.select_threads(m, k, n).threads(),
            b.select_threads(m, k, n).threads(),
            "decision changed after disk roundtrip for {m}x{k}x{n}"
        );
    }
}

#[test]
fn memoisation_counts_evaluations_once_per_shape_change() {
    let (_, install) = quick_install(MachineModel::gadi());
    let mut runtime = install.into_runtime();
    for _ in 0..10 {
        runtime.select_threads(64, 3000, 64);
    }
    assert_eq!(runtime.evaluations, 1);
    runtime.select_threads(65, 3000, 64);
    assert_eq!(runtime.evaluations, 2);
}

#[test]
fn install_reports_have_finite_sane_metrics() {
    let (_, install) = quick_install(MachineModel::gadi());
    for r in &install.reports {
        assert!(r.test_nrmse.is_finite() && r.test_nrmse >= 0.0, "{r:?}");
        assert!(r.eval_time_us > 0.0, "{r:?}");
        assert!(r.ideal_mean_speedup > 0.0, "{r:?}");
        assert!(
            r.est_mean_speedup <= r.ideal_mean_speedup + 1e-9,
            "eval overhead cannot raise the speedup: {r:?}"
        );
    }
}
