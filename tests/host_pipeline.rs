//! End-to-end against real hardware: the same installation pipeline that
//! runs on the simulated nodes, driven by `HostTimer` — which times the
//! actual blocked GEMM from `adsala-gemm` on this machine's cores.
//!
//! Kept deliberately tiny (small shapes, few reps) so it stays in CI
//! territory; the point is that nothing in the pipeline is
//! simulator-specific.

use adsala_repro::adsala::gather::{GatherConfig, ThreadLadder};
use adsala_repro::adsala::install::{InstallConfig, Installation};
use adsala_repro::adsala_machine::{GemmTimer, HostTimer};
use adsala_repro::adsala_ml::tune::ModelSpec;
use adsala_repro::adsala_ml::ModelKind;
use adsala_repro::adsala_sampling::MemoryCap;

fn tiny_host_config(max_threads: u32) -> InstallConfig {
    let ladder = ThreadLadder::geometric(max_threads);
    // The install pipeline needs ≥50 train + ≥10 test rows after the
    // stratified split; rows = shapes × rungs, so scale the shape count
    // for machines whose ladder is short (a 1-core host has one rung).
    let n_shapes = 40usize.max(120usize.div_ceil(ladder.len()));
    let mut cfg = InstallConfig::quick();
    cfg.gather = GatherConfig {
        n_shapes,
        cap: MemoryCap::from_mb(2),
        reps: 1,
        ladder: Some(ladder),
        max_dim: Some(384),
        ..GatherConfig::quick()
    };
    cfg.families = vec![ModelKind::DecisionTree];
    cfg.grids = vec![(
        ModelKind::DecisionTree,
        vec![ModelSpec::DecisionTree { max_depth: 10, min_samples_leaf: 2 }],
    )];
    cfg.folds = 3;
    cfg.speedup_reps = 1;
    cfg.max_speedup_shapes = 10;
    cfg
}

#[test]
fn pipeline_trains_against_real_host_gemm() {
    let host_threads =
        std::thread::available_parallelism().map(|n| n.get() as u32).unwrap_or(2).min(8);
    let timer = HostTimer::with_max_threads(host_threads);
    let cfg = tiny_host_config(host_threads);
    let install = Installation::run(&timer, &cfg).expect("host install");

    assert_eq!(install.max_threads, host_threads);
    assert!(install.machine.contains("host"));
    let report = &install.reports[0];
    assert!(
        report.test_nrmse < 1.0,
        "model no better than the mean predictor on real timings: {}",
        report.test_nrmse
    );

    // The runtime handle must produce usable decisions and execute a
    // correct GEMM with them.
    let mut gemm = install.into_runtime();
    let d = gemm.select_threads(96, 96, 96);
    assert!((1..=host_threads).contains(&d.threads()));

    let (m, k, n) = (48usize, 32usize, 40usize);
    let a: Vec<f32> = (0..m * k).map(|i| (i % 11) as f32 - 5.0).collect();
    let b: Vec<f32> = (0..k * n).map(|i| (i % 7) as f32 * 0.25).collect();
    let mut c = vec![0.0f32; m * n];
    let (_, stats) = gemm
        .sgemm_host(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n, host_threads)
        .expect("well-formed sgemm");
    assert!(stats.exec.kernel_calls > 0);

    let mut c_ref = vec![0.0f32; m * n];
    adsala_repro::adsala_gemm::naive::naive_gemm(
        adsala_repro::adsala_gemm::Transpose::No,
        adsala_repro::adsala_gemm::Transpose::No,
        m,
        n,
        k,
        1.0f32,
        &a,
        k,
        &b,
        n,
        0.0,
        &mut c_ref,
        n,
    );
    for (x, y) in c.iter().zip(&c_ref) {
        assert!((x - y).abs() <= 1e-3 * (1.0 + y.abs()));
    }
}

#[test]
fn host_timer_thread_scaling_is_sane() {
    // On any multi-core host, a 384³ GEMM on 2 threads should not be
    // slower than ~1.6x the single-thread time (generous bound to stay
    // robust on loaded CI machines).
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores < 2 {
        return;
    }
    let timer = HostTimer::with_max_threads(2);
    let shape = adsala_repro::adsala_sampling::GemmShape::new(384, 384, 384);
    let t1 = timer.time(shape, 1, 3);
    let t2 = timer.time(shape, 2, 3);
    assert!(t2 < t1 * 1.6, "2-thread GEMM implausibly slow: {t2}s vs {t1}s serial");
}
