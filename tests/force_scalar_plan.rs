//! Regression coverage for the force-scalar / decision-cache interaction:
//! a decision memoised with a SIMD-pinned plan (what an artefact trained
//! on a SIMD host caches) must still execute through the scalar kernel
//! when `ADSALA_FORCE_SCALAR` is active, with [`OpStats::plan_degraded`]
//! reporting the clamp — and must run the pinned ISA faithfully when the
//! override is off. The CI suite runs twice, with and without the
//! override, so both arms of every conditional below are exercised.

use adsala::{DecisionCache, PlanDecision};
use adsala_repro::adsala_gemm::dispatch::{GemmArgs, OpRequest};
use adsala_repro::adsala_gemm::isa::{force_scalar_requested, KernelIsa};
use adsala_repro::adsala_gemm::naive::naive_gemm;
use adsala_repro::adsala_gemm::plan::ExecutionPlan;
use adsala_repro::adsala_gemm::pool::ThreadPool;
use adsala_repro::adsala_gemm::Transpose;

fn fill(n: usize, seed: u64) -> Vec<f64> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 1000) as f64 - 500.0) / 100.0
        })
        .collect()
}

#[test]
fn cached_simd_plan_executes_scalar_under_force_scalar() {
    // The plan a SIMD host's artefact would memoise: pin the best ISA the
    // hardware supports, ignoring the override (that is exactly the state
    // a cache serialised before `ADSALA_FORCE_SCALAR` was set carries).
    let pinned = KernelIsa::detect();
    let plan = ExecutionPlan::with_threads(2).with_isa(pinned);
    let (m, n, k) = (48usize, 37, 29);

    let cache = DecisionCache::new(4, 64);
    let shape = {
        let a = vec![0.0f64; m * k];
        let b = vec![0.0f64; k * n];
        let mut c = vec![0.0f64; m * n];
        let req: OpRequest<'_, f64> =
            GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
        req.shape()
    };
    cache.insert(shape, PlanDecision { plan, predicted_runtime_s: 1e-3, memoised: false });
    let cached = cache.get(shape).expect("decision must be memoised");
    assert!(cached.memoised);
    assert_eq!(cached.plan, plan, "the cache must never rewrite a stored plan");

    // Execute under the cached plan and check what actually ran.
    let pool = ThreadPool::new(2);
    let a = fill(m * k, 3);
    let b = fill(k * n, 4);
    let mut c = fill(m * n, 5);
    let mut c_ref = c.clone();
    let mut req: OpRequest<'_, f64> =
        GemmArgs::untransposed(m, n, k, 1.5, &a, k, &b, n, -0.25, &mut c, n).into();
    let stats = req.execute(&pool, &cached.plan).expect("valid request");

    assert_eq!(stats.plan, plan, "the report echoes the requested plan verbatim");
    if force_scalar_requested() {
        assert_eq!(
            stats.exec.kernel_isa,
            KernelIsa::Scalar,
            "a cached SIMD plan must clamp to the scalar kernel under ADSALA_FORCE_SCALAR"
        );
        assert_eq!(
            stats.plan_degraded,
            pinned != KernelIsa::Scalar,
            "the clamp must be reported whenever a non-scalar ISA was pinned"
        );
    } else {
        assert_eq!(stats.exec.kernel_isa, pinned, "without the override the pinned ISA runs");
        assert!(!stats.plan_degraded, "an honoured plan is not degraded");
    }

    // Degraded or not, the product must still be right.
    naive_gemm(Transpose::No, Transpose::No, m, n, k, 1.5, &a, k, &b, n, -0.25, &mut c_ref, n);
    for (i, (x, y)) in c.iter().zip(&c_ref).enumerate() {
        assert!((x - y).abs() <= 1e-9 * (1.0 + y.abs()), "mismatch at {i}: {x} vs {y}");
    }
}

#[test]
fn explicit_scalar_plans_never_degrade() {
    // Pinning scalar is always honoured, override or not: this is the
    // anchor that keeps the conditional test above meaningful in both CI
    // legs.
    let (m, n, k) = (16usize, 16, 16);
    let pool = ThreadPool::new(1);
    let a = fill(m * k, 7);
    let b = fill(k * n, 8);
    let mut c = vec![0.0f64; m * n];
    let mut req: OpRequest<'_, f64> =
        GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
    let plan = ExecutionPlan::with_threads(1).with_isa(KernelIsa::Scalar);
    let stats = req.execute(&pool, &plan).expect("valid request");
    assert_eq!(stats.exec.kernel_isa, KernelIsa::Scalar);
    assert!(!stats.plan_degraded);
}
