//! SIMD-vs-scalar equivalence suite for the kernel-dispatch layer.
//!
//! The dispatched SIMD micro-kernels (AVX2+FMA / NEON) partition the
//! depth sum across vector lanes and contract multiply-adds into FMAs,
//! so their results differ from the scalar reference path by rounding
//! only. This suite pins that claim down:
//!
//! * every `(transpose_a, transpose_b)` combination, skewed shapes, and
//!   edge tiles (`live_m < MR`, `live_n < NR`) agree within an
//!   accumulation-order error bound derived per element from exact
//!   `f64`/`f128`-style arithmetic (`C·ε·k` times the magnitude sum of
//!   the dot product — the standard reordering bound),
//! * the β = 0 and α = 1 write-back specialisations agree under both
//!   kernels (and β = 0 never reads `C` under either),
//! * the scalar path itself stays **bitwise identical** to the
//!   pre-dispatch (PR 4) implementation, reconstructed here from the
//!   public `accumulate`/`merge_into_raw` contract.
//!
//! The suite passes under the host's dispatched ISA *and* under
//! `ADSALA_FORCE_SCALAR=1` (CI runs both): when dispatch already
//! resolves to scalar the comparisons degenerate to bitwise equality,
//! which the bounds trivially admit.

use adsala_repro::adsala_gemm::blocking::BlockSizes;
use adsala_repro::adsala_gemm::gemm::{gemm_with_stats, gemm_with_stats_pooled, GemmCall};
use adsala_repro::adsala_gemm::isa::{Kernel, KernelIsa};
use adsala_repro::adsala_gemm::microkernel::{accumulate, merge_into_raw};
use adsala_repro::adsala_gemm::pool::ThreadPool;
use adsala_repro::adsala_gemm::{Element, Transpose};

fn fill_f32(n: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 2000) as f32 - 1000.0) / 250.0
        })
        .collect()
}

fn fill_f64(n: usize, seed: u64) -> Vec<f64> {
    fill_f32(n, seed).into_iter().map(f64::from).collect()
}

/// Logical `op(A)`/`op(B)` element accessors for building error bounds.
fn op_at<T: Element + Into<f64>>(
    data: &[T],
    ld: usize,
    transposed: bool,
    i: usize,
    j: usize,
) -> f64 {
    if transposed {
        data[j * ld + i].into()
    } else {
        data[i * ld + j].into()
    }
}

/// Per-element reordering bound: different summation orders (and FMA
/// contraction) of the same dot product differ by at most
/// `C · ε · k · Σ_l |a_il|·|b_lj|` plus the α/β merge rounding, which is
/// absorbed into the same form via the output magnitude.
#[allow(clippy::too_many_arguments)]
fn assert_equivalent<T: Element + Into<f64>>(
    label: &str,
    simd: &[T],
    scalar: &[T],
    a: &[T],
    lda: usize,
    ta: Transpose,
    b: &[T],
    ldb: usize,
    tb: Transpose,
    c_init: &[f64],
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    beta: f64,
    eps: f64,
) {
    assert_eq!(simd.len(), scalar.len());
    for i in 0..m {
        for j in 0..n {
            let mut mag = 0.0f64;
            for l in 0..k {
                mag += (op_at(a, lda, ta.is_transposed(), i, l)
                    * op_at(b, ldb, tb.is_transposed(), l, j))
                .abs();
            }
            let scale =
                alpha.abs() * mag + beta.abs() * c_init[i * n + j].abs() + f64::MIN_POSITIVE;
            let bound = 8.0 * eps * (k as f64 + 2.0) * scale;
            let (x, y): (f64, f64) = (simd[i * n + j].into(), scalar[i * n + j].into());
            assert!(
                (x - y).abs() <= bound,
                "{label}: ({i},{j}) dispatched {x} vs scalar {y}, |Δ| = {} > bound {bound}",
                (x - y).abs()
            );
        }
    }
}

/// Run one GEMM under an explicit ISA, returning the output.
#[allow(clippy::too_many_arguments)]
fn run_isa<T: Element>(
    isa: KernelIsa,
    ta: Transpose,
    tb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    threads: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c_init: &[T],
) -> (Vec<T>, KernelIsa) {
    let mut c = c_init.to_vec();
    let call =
        GemmCall { trans_a: ta, trans_b: tb, ..GemmCall::new(m, n, k, threads) }.with_isa(isa);
    let stats = gemm_with_stats(&call, alpha, a, lda, b, ldb, beta, &mut c, n.max(1));
    (c, stats.kernel_isa)
}

/// The suite's shape grid: square, skewed both ways, sub-tile, ragged
/// edges around every kernel's MR/NR, and a deep-k accumulation case.
const SHAPES: [(usize, usize, usize); 8] = [
    (64, 64, 64),
    (97, 33, 131),  // ragged in every dimension
    (5, 3, 7),      // below any register tile: all-edge tiles
    (1, 1, 600),    // deep k, single element
    (256, 17, 40),  // tall-skinny, live_n < NR tiles
    (13, 257, 96),  // short-wide, live_m < MR tiles
    (6, 16, 128),   // exactly one AVX2 f32 tile
    (48, 48, 1200), // multiple KC blocks (β_eff accumulation path)
];

#[test]
fn dispatched_matches_scalar_all_transposes_f32() {
    let dispatched = KernelIsa::dispatched();
    for &(m, n, k) in &SHAPES {
        for ta in [Transpose::No, Transpose::Yes] {
            for tb in [Transpose::No, Transpose::Yes] {
                let (ar, ac) = if ta.is_transposed() { (k, m) } else { (m, k) };
                let (br, bc) = if tb.is_transposed() { (n, k) } else { (k, n) };
                let a = fill_f32(ar * ac, 11);
                let b = fill_f32(br * bc, 22);
                let c0 = fill_f32(m * n, 33);
                let c0_f64: Vec<f64> = c0.iter().map(|&v| f64::from(v)).collect();
                let (alpha, beta) = (1.3f32, -0.4f32);
                let (simd, ran) =
                    run_isa(dispatched, ta, tb, m, n, k, 3, alpha, &a, ac, &b, bc, beta, &c0);
                assert_eq!(ran, dispatched);
                let (scalar, ran) = run_isa(
                    KernelIsa::Scalar,
                    ta,
                    tb,
                    m,
                    n,
                    k,
                    3,
                    alpha,
                    &a,
                    ac,
                    &b,
                    bc,
                    beta,
                    &c0,
                );
                assert_eq!(ran, KernelIsa::Scalar);
                assert_equivalent(
                    &format!("f32 {m}x{n}x{k} {ta:?}/{tb:?}"),
                    &simd,
                    &scalar,
                    &a,
                    ac,
                    ta,
                    &b,
                    bc,
                    tb,
                    &c0_f64,
                    m,
                    n,
                    k,
                    f64::from(alpha),
                    f64::from(beta),
                    f64::from(f32::EPSILON),
                );
            }
        }
    }
}

#[test]
fn dispatched_matches_scalar_all_transposes_f64() {
    let dispatched = KernelIsa::dispatched();
    for &(m, n, k) in &SHAPES {
        for ta in [Transpose::No, Transpose::Yes] {
            for tb in [Transpose::No, Transpose::Yes] {
                let (ar, ac) = if ta.is_transposed() { (k, m) } else { (m, k) };
                let (br, bc) = if tb.is_transposed() { (n, k) } else { (k, n) };
                let a = fill_f64(ar * ac, 44);
                let b = fill_f64(br * bc, 55);
                let c0 = fill_f64(m * n, 66);
                let (alpha, beta) = (0.75f64, 2.0f64);
                let (simd, _) =
                    run_isa(dispatched, ta, tb, m, n, k, 4, alpha, &a, ac, &b, bc, beta, &c0);
                let (scalar, _) = run_isa(
                    KernelIsa::Scalar,
                    ta,
                    tb,
                    m,
                    n,
                    k,
                    4,
                    alpha,
                    &a,
                    ac,
                    &b,
                    bc,
                    beta,
                    &c0,
                );
                assert_equivalent(
                    &format!("f64 {m}x{n}x{k} {ta:?}/{tb:?}"),
                    &simd,
                    &scalar,
                    &a,
                    ac,
                    ta,
                    &b,
                    bc,
                    tb,
                    &c0,
                    m,
                    n,
                    k,
                    alpha,
                    beta,
                    f64::EPSILON,
                );
            }
        }
    }
}

#[test]
fn beta_zero_and_alpha_one_specialisations_agree() {
    let dispatched = KernelIsa::dispatched();
    let (m, n, k) = (45, 29, 77);
    let a = fill_f32(m * k, 7);
    let b = fill_f32(k * n, 8);
    let zero_c = vec![0.0f32; m * n];
    let c0 = fill_f32(m * n, 9);
    let c0_f64: Vec<f64> = c0.iter().map(|&v| f64::from(v)).collect();
    for (alpha, beta, c_init, label) in
        [(1.0f32, 0.0f32, &zero_c, "α=1 β=0"), (2.5, 0.0, &zero_c, "β=0"), (1.0, 0.5, &c0, "α=1")]
    {
        let c_init_f64: Vec<f64> = if beta == 0.0 { vec![0.0; m * n] } else { c0_f64.clone() };
        let no = Transpose::No;
        let (simd, _) = run_isa(dispatched, no, no, m, n, k, 2, alpha, &a, k, &b, n, beta, c_init);
        let (scalar, _) =
            run_isa(KernelIsa::Scalar, no, no, m, n, k, 2, alpha, &a, k, &b, n, beta, c_init);
        assert_equivalent(
            label,
            &simd,
            &scalar,
            &a,
            k,
            no,
            &b,
            n,
            no,
            &c_init_f64,
            m,
            n,
            k,
            f64::from(alpha),
            f64::from(beta),
            f64::from(f32::EPSILON),
        );
    }
}

#[test]
fn beta_zero_never_reads_c_under_dispatch() {
    // NaN-poisoned output: β = 0 BLAS semantics must hold under whatever
    // kernel dispatch resolves to, including on edge tiles.
    let (m, n, k) = (19, 21, 16);
    let a = fill_f32(m * k, 1);
    let b = fill_f32(k * n, 2);
    let mut c = vec![f32::NAN; m * n];
    let call = GemmCall::new(m, n, k, 2);
    gemm_with_stats(&call, 1.0f32, &a, k, &b, n, 0.0, &mut c, n);
    assert!(c.iter().all(|v| v.is_finite()), "β = 0 must overwrite NaN garbage");
}

#[test]
fn pooled_and_scoped_agree_bitwise_under_dispatch() {
    // The shared-B cooperative driver keeps per-tile FLOP order, so its
    // results must stay bitwise identical to the scoped driver under the
    // SIMD kernels too, not just scalar.
    let pool = ThreadPool::new(4);
    let (m, n, k) = (192, 56, 144);
    let a = fill_f64(m * k, 13);
    let b = fill_f64(k * n, 14);
    let c0 = fill_f64(m * n, 15);
    let call = GemmCall::new(m, n, k, 4);
    let mut c_scoped = c0.clone();
    let mut c_pooled = c0;
    let s1 = gemm_with_stats(&call, 1.1, &a, k, &b, n, 0.3, &mut c_scoped, n);
    let s2 = gemm_with_stats_pooled(&pool, &call, 1.1, &a, k, &b, n, 0.3, &mut c_pooled, n);
    assert_eq!(c_scoped, c_pooled);
    assert_eq!(s1.kernel_isa, s2.kernel_isa);
    assert_eq!((s1.mr, s1.nr), (s2.mr, s2.nr));
    assert_eq!(s1.kernel_isa, KernelIsa::dispatched());
}

#[test]
fn scalar_path_is_bitwise_identical_to_pr4_reference() {
    // Reconstruct the pre-dispatch (PR 4) driver inline from the public
    // scalar micro-kernel contract — same blocking constants, same pack
    // layout, same per-tile accumulate + merge order — and require the
    // forced-scalar driver to reproduce it bit for bit.
    use adsala_repro::adsala_gemm::pack::{pack_a, pack_b, MatView};

    let (m, n, k) = (100usize, 73usize, 65usize);
    let a = fill_f64(m * k, 91);
    let b = fill_f64(k * n, 92);
    let c0 = fill_f64(m * n, 93);
    let (alpha, beta) = (1.25f64, -0.5f64);

    // The driver under test: serial, forced scalar, PR 4 blocking.
    let blocks = BlockSizes::for_f64();
    let call = GemmCall::new(m, n, k, 1).with_blocks(blocks).with_isa(KernelIsa::Scalar);
    let mut c_driver = c0.clone();
    let stats = gemm_with_stats(&call, alpha, &a, k, &b, n, beta, &mut c_driver, n);
    assert_eq!(stats.kernel_isa, KernelIsa::Scalar);
    assert_eq!((stats.mr, stats.nr), (blocks.mr, blocks.nr));

    // The PR 4 loop nest, re-derived from the public contract.
    let blocks = blocks.clamped(m, n, k);
    let (mc, kc, nc, mr, nr) = (blocks.mc, blocks.kc, blocks.nc, blocks.mr, blocks.nr);
    let a_view = MatView::row_major(&a, m, k, k);
    let b_view = MatView::row_major(&b, k, n, n);
    let mut c_ref = c0;
    let mut a_buf = vec![0.0f64; mc.div_ceil(mr) * mr * kc];
    let mut b_buf = vec![0.0f64; kc * nc.div_ceil(nr) * nr];
    let mut jc = 0;
    while jc < n {
        let ncur = (n - jc).min(nc);
        let mut pc = 0;
        while pc < k {
            let kcur = (k - pc).min(kc);
            let beta_eff = if pc == 0 { beta } else { 1.0 };
            pack_b(&b_view.sub(pc, jc, kcur, ncur), nr, &mut b_buf);
            let mut ic = 0;
            while ic < m {
                let mcur = (m - ic).min(mc);
                pack_a(&a_view.sub(ic, pc, mcur, kcur), mr, &mut a_buf);
                for jr in 0..ncur.div_ceil(nr) {
                    let j0 = jr * nr;
                    let live_n = (ncur - j0).min(nr);
                    let b_panel = &b_buf[jr * nr * kcur..(jr + 1) * nr * kcur];
                    for ir in 0..mcur.div_ceil(mr) {
                        let i0 = ir * mr;
                        let live_m = (mcur - i0).min(mr);
                        let a_panel = &a_buf[ir * mr * kcur..(ir + 1) * mr * kcur];
                        let acc = accumulate(kcur, a_panel, b_panel);
                        // SAFETY: the tile origin and live region lie
                        // inside the m×n C buffer by loop construction.
                        unsafe {
                            merge_into_raw(
                                &acc,
                                c_ref.as_mut_ptr().add((ic + i0) * n + jc + j0),
                                n,
                                live_m,
                                live_n,
                                alpha,
                                beta_eff,
                            );
                        }
                    }
                }
                ic += mcur;
            }
            pc += kcur;
        }
        jc += ncur;
    }
    assert_eq!(c_driver, c_ref, "forced-scalar driver must match the PR 4 loop nest bitwise");
}

#[test]
fn kernel_level_edge_tiles_match_scalar_masking() {
    // Directly exercise every (live_m, live_n) mask of the dispatched
    // kernel against the scalar kernel on identically packed panels.
    let kern = Kernel::<f32>::dispatched();
    let scal = Kernel::<f32>::for_isa(KernelIsa::Scalar);
    let kc = 23usize;
    // Pack one panel pair per kernel geometry from the same dense data.
    let dense_a = fill_f32(8 * 16 * kc, 3); // enough for any tile
    let dense_b = fill_f32(kc * 16, 4);
    let pack = |mr: usize, nr: usize| {
        let mut ap = vec![0.0f32; kc * mr];
        for l in 0..kc {
            for i in 0..mr {
                ap[l * mr + i] = dense_a[i * kc + l];
            }
        }
        let mut bp = vec![0.0f32; kc * nr];
        for l in 0..kc {
            bp[l * nr..(l + 1) * nr].copy_from_slice(&dense_b[l * 16..l * 16 + nr]);
        }
        (ap, bp)
    };
    let (kap, kbp) = pack(kern.mr, kern.nr);
    let (sap, sbp) = pack(scal.mr, scal.nr);
    let common_m = kern.mr.min(scal.mr);
    let common_n = kern.nr.min(scal.nr);
    for live_m in 1..=common_m {
        for live_n in 1..=common_n {
            let mut ck = vec![-7.0f32; common_m * common_n];
            let mut cs = ck.clone();
            // SAFETY: panels are packed for each kernel's tile; the
            // live region lies inside the common_m×common_n buffer.
            unsafe {
                kern.run(
                    kc,
                    kap.as_ptr(),
                    kbp.as_ptr(),
                    ck.as_mut_ptr(),
                    common_n,
                    live_m,
                    live_n,
                    1.5,
                    0.25,
                );
                scal.run(
                    kc,
                    sap.as_ptr(),
                    sbp.as_ptr(),
                    cs.as_mut_ptr(),
                    common_n,
                    live_m,
                    live_n,
                    1.5,
                    0.25,
                );
            }
            for i in 0..common_m {
                for j in 0..common_n {
                    let (x, y) = (ck[i * common_n + j], cs[i * common_n + j]);
                    if i < live_m && j < live_n {
                        let mag: f32 = (0..kc)
                            .map(|l| (dense_a[i * kc + l] * dense_b[l * 16 + j]).abs())
                            .sum();
                        let bound = 8.0 * f32::EPSILON * (kc as f32 + 2.0) * (1.5 * mag + 2.0);
                        assert!(
                            (x - y).abs() <= bound,
                            "live ({live_m},{live_n}) @ ({i},{j}): {x} vs {y}"
                        );
                    } else {
                        assert_eq!(x, -7.0, "dead lane ({i},{j}) written at ({live_m},{live_n})");
                        assert_eq!(x, y);
                    }
                }
            }
        }
    }
}
