//! Integration tests for the admission-controlled co-scheduler: many
//! client threads submitting mixed-shape traffic through one
//! `ServiceScheduler`, with every result compared bitwise against an
//! unscheduled serial execution (per-tile FLOP order is grid-invariant,
//! so any joint thread assignment must reproduce the 1-thread bits).

use std::sync::Arc;

use adsala::bundle::quick_test_bundle as quick_bundle;
use adsala::prelude::*;
use adsala_gemm::gemm::{gemm_with_stats, GemmCall};

fn scheduler(workers: usize, cfg: SchedulerConfig) -> ServiceScheduler {
    let service = Arc::new(AdsalaService::with_config(
        quick_bundle().into_shared(),
        ServiceConfig { pool_workers: workers, ..ServiceConfig::default() },
    ));
    ServiceScheduler::with_config(service, cfg)
}

fn fill(n: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 2000) as f32 - 1000.0) / 350.0
        })
        .collect()
}

#[test]
fn scheduler_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ServiceScheduler>();
    assert_send_sync::<SchedulerStats>();
}

/// The headline stress test: 8 clients, overlapping mixed-shape streams,
/// every scheduled result bitwise-identical to the unscheduled serial
/// (1-thread spawn-driver) execution of the same op, counters consistent,
/// and the joint assignment never exceeding the budget.
#[test]
fn mixed_shape_stress_matches_unscheduled_serial_bitwise() {
    let sched = Arc::new(scheduler(4, SchedulerConfig::default()));
    let clients = 8usize;
    let reps = 6usize;
    let shapes: [(usize, usize, usize); 6] =
        [(40, 48, 32), (64, 64, 64), (33, 29, 17), (96, 72, 40), (20, 24, 128), (56, 40, 24)];

    // Serial references first: the unscheduled baseline each scheduled
    // result must reproduce bit for bit.
    struct Case {
        m: usize,
        n: usize,
        k: usize,
        a: Vec<f32>,
        b: Vec<f32>,
        c_ref: Vec<f32>,
    }
    let cases: Vec<Vec<Case>> = (0..clients)
        .map(|client| {
            (0..reps)
                .map(|rep| {
                    let (m, n, k) = shapes[(client + rep) % shapes.len()];
                    let a = fill(m * k, (client * 100 + rep) as u64 + 1);
                    let b = fill(k * n, (client * 100 + rep) as u64 + 51);
                    let mut c_ref = vec![1.0f32; m * n];
                    let call = GemmCall::new(m, n, k, 1);
                    gemm_with_stats(&call, 1.5, &a, k, &b, n, 0.5, &mut c_ref, n);
                    Case { m, n, k, a, b, c_ref }
                })
                .collect()
        })
        .collect();

    std::thread::scope(|scope| {
        for client_cases in &cases {
            let sched = Arc::clone(&sched);
            scope.spawn(move || {
                for case in client_cases {
                    let (m, n, k) = (case.m, case.n, case.k);
                    let mut c = vec![1.0f32; m * n];
                    let mut req: OpRequest<'_, f32> = GemmArgs::untransposed(
                        m, n, k, 1.5, &case.a, k, &case.b, n, 0.5, &mut c, n,
                    )
                    .into();
                    let run = sched.submit(&mut req).expect("schedule sgemm");
                    assert!(run.plan.threads as usize <= sched.thread_budget());
                    assert_eq!(
                        c, case.c_ref,
                        "scheduled {m}x{k}x{n} diverged from unscheduled serial execution"
                    );
                }
            });
        }
    });

    let stats = sched.stats();
    assert_eq!(stats.submitted, (clients * reps) as u64);
    assert_eq!(stats.completed, stats.submitted);
    assert_eq!(stats.queue_depth, 0, "{stats:?}");
    assert_eq!(stats.in_flight_threads, 0, "{stats:?}");
    assert!(
        stats.max_in_flight_threads <= stats.thread_budget,
        "joint assignment exceeded the budget: {stats:?}"
    );
    assert_eq!(stats.waves_completed, stats.waves, "{stats:?}");
    assert!(stats.measured_makespan_s > 0.0);
}

/// Mixed precisions share one queue: an f32 and an f64 stream served
/// concurrently, each bitwise-equal to its direct spawn-driver kernel.
#[test]
fn mixed_precision_streams_serve_concurrently() {
    let sched = Arc::new(scheduler(4, SchedulerConfig::default()));
    std::thread::scope(|scope| {
        let s32 = Arc::clone(&sched);
        scope.spawn(move || {
            let (m, n, k) = (48usize, 40usize, 32usize);
            let a = fill(m * k, 11);
            let b = fill(k * n, 12);
            let mut c_ref = vec![1.0f32; m * n];
            gemm_with_stats(&GemmCall::new(m, n, k, 1), 1.5, &a, k, &b, n, 0.5, &mut c_ref, n);
            for _ in 0..6 {
                let mut c = vec![1.0f32; m * n];
                let mut req: OpRequest<'_, f32> =
                    GemmArgs::untransposed(m, n, k, 1.5, &a, k, &b, n, 0.5, &mut c, n).into();
                let run = s32.submit(&mut req).expect("f32 gemm");
                assert_eq!(
                    (run.stats.routine, run.stats.precision),
                    (Routine::Gemm, Precision::F32)
                );
                assert_eq!(c, c_ref, "f32 stream diverged");
            }
        });
        let s64 = Arc::clone(&sched);
        scope.spawn(move || {
            let (m, n, k) = (36usize, 52usize, 24usize);
            let a: Vec<f64> = (0..m * k).map(|i| (i % 9) as f64 - 4.0).collect();
            let b: Vec<f64> = (0..k * n).map(|i| (i % 7) as f64 * 0.5).collect();
            let mut c_ref = vec![2.0f64; m * n];
            gemm_with_stats(&GemmCall::new(m, n, k, 1), 1.0, &a, k, &b, n, -0.5, &mut c_ref, n);
            for _ in 0..6 {
                let mut c = vec![2.0f64; m * n];
                let mut req: OpRequest<'_, f64> =
                    GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, -0.5, &mut c, n).into();
                let run = s64.submit(&mut req).expect("f64 gemm");
                assert_eq!(
                    (run.stats.routine, run.stats.precision),
                    (Routine::Gemm, Precision::F64)
                );
                assert_eq!(c, c_ref, "f64 stream diverged");
            }
        });
    });
    let stats = sched.stats();
    assert_eq!(stats.completed, 12);
}

/// Strict-FIFO fairness: a flood of heavy ops from three clients cannot
/// starve a fourth client's small ops — the test completing (all 48
/// submits returning) is the guarantee; a starved queue would hang.
#[test]
fn heavy_flood_does_not_starve_small_ops() {
    let sched = Arc::new(scheduler(4, SchedulerConfig::default()));
    let reps = 12usize;
    std::thread::scope(|scope| {
        for t in 0..3u64 {
            let sched = Arc::clone(&sched);
            scope.spawn(move || {
                let (m, n, k) = (192usize, 192usize, 96usize);
                let a = fill(m * k, 500 + t);
                let b = fill(k * n, 600 + t);
                let mut c = vec![0.0f32; m * n];
                for _ in 0..reps {
                    let mut req: OpRequest<'_, f32> =
                        GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
                    sched.submit(&mut req).expect("heavy op");
                }
            });
        }
        let sched2 = Arc::clone(&sched);
        scope.spawn(move || {
            // Give the flood a head start so the small ops genuinely queue
            // behind heavy traffic (ordering aid only, not a correctness
            // precondition).
            std::thread::sleep(std::time::Duration::from_millis(10));
            let (m, n, k) = (24usize, 24usize, 16usize);
            let a = fill(m * k, 700);
            let b = fill(k * n, 701);
            let mut c = vec![0.0f32; m * n];
            for _ in 0..reps {
                let mut req: OpRequest<'_, f32> =
                    GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
                sched2.submit(&mut req).expect("small op must not starve");
            }
        });
    });
    let stats = sched.stats();
    assert_eq!(stats.completed, (4 * reps) as u64);
    assert_eq!(stats.queue_depth, 0);
}

/// Same-shape ops sharing one stored `B` that queue while the budget is
/// exhausted must be admitted as one fused unit: one decision, one packed
/// `B`, results still bitwise-identical to serial execution, and no gang
/// reservation ever refused.
#[test]
fn queued_same_shape_ops_fuse_and_never_lose_gangs() {
    let sched =
        Arc::new(scheduler(4, SchedulerConfig { thread_budget: 2, ..SchedulerConfig::default() }));

    // The blocker must occupy the whole 2-thread budget so the fusable
    // ops pile up behind it; for a GEMM this large the model reliably
    // predicts 2 threads beating 1. 768x384x768 f64 keeps it running for
    // hundreds of milliseconds — orders of magnitude past the staging
    // sleep below.
    let (bm, bn, bk) = (768usize, 768usize, 384usize);
    let blocker_a: Vec<f64> = (0..bm * bk).map(|i| (i % 13) as f64 - 6.0).collect();
    let blocker_b: Vec<f64> = (0..bk * bn).map(|i| (i % 11) as f64 * 0.25).collect();

    let (m, n, k) = (64usize, 48usize, 32usize);
    let b = fill(k * n, 7);
    let followers = 3usize;
    let a_mats: Vec<Vec<f32>> = (0..followers).map(|t| fill(m * k, 900 + t as u64)).collect();
    let c_refs: Vec<Vec<f32>> = a_mats
        .iter()
        .map(|a| {
            let mut c_ref = vec![0.0f32; m * n];
            gemm_with_stats(&GemmCall::new(m, n, k, 1), 1.0, a, k, &b, n, 0.0, &mut c_ref, n);
            c_ref
        })
        .collect();

    std::thread::scope(|scope| {
        let blocker = Arc::clone(&sched);
        let (ba, bb) = (&blocker_a, &blocker_b);
        scope.spawn(move || {
            let mut c = vec![0.0f64; bm * bn];
            let mut req: OpRequest<'_, f64> =
                GemmArgs::untransposed(bm, bn, bk, 1.0, ba, bk, bb, bn, 0.0, &mut c, bn).into();
            let run = blocker.submit(&mut req).expect("blocker gemm");
            assert_eq!(
                run.plan.threads, 2,
                "test precondition: the blocker must occupy the whole budget"
            );
        });
        // Let the blocker get admitted before the followers queue up.
        std::thread::sleep(std::time::Duration::from_millis(50));
        for (a, c_ref) in a_mats.iter().zip(&c_refs) {
            let sched = Arc::clone(&sched);
            let b = &b;
            scope.spawn(move || {
                let mut c = vec![0.0f32; m * n];
                let mut req: OpRequest<'_, f32> =
                    GemmArgs::untransposed(m, n, k, 1.0, a, k, b, n, 0.0, &mut c, n).into();
                let run = sched.submit(&mut req).expect("follower gemm");
                assert_eq!(c, *c_ref, "fused execution diverged from serial");
                assert!(run.plan.threads >= 1);
            });
        }
    });

    let stats = sched.stats();
    assert_eq!(stats.completed, (followers + 1) as u64);
    assert!(
        stats.fused_ops >= 2,
        "followers queued behind a budget-filling blocker must fuse: {stats:?}"
    );
    assert_eq!(stats.gang_fallbacks(), 0, "budgeted waves must never lose a gang: {stats:?}");
}

/// The per-call host cap bounds an op's share of the joint assignment
/// even while uncapped traffic competes for the same budget.
#[test]
fn host_cap_bounds_joint_share_under_concurrency() {
    let sched = Arc::new(scheduler(4, SchedulerConfig::default()));
    std::thread::scope(|scope| {
        for t in 0..2u64 {
            let sched = Arc::clone(&sched);
            scope.spawn(move || {
                let (m, n, k) = (128usize, 128usize, 64usize);
                let a = fill(m * k, 20 + t);
                let b = fill(k * n, 30 + t);
                let mut c = vec![0.0f32; m * n];
                for _ in 0..6 {
                    let mut req: OpRequest<'_, f32> =
                        GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
                    sched.submit(&mut req).expect("uncapped gemm");
                }
            });
        }
        let capped = Arc::clone(&sched);
        scope.spawn(move || {
            let (m, n, k) = (256usize, 256usize, 32usize);
            let a = fill(m * k, 40);
            let b = fill(k * n, 41);
            let mut c = vec![0.0f32; m * n];
            for _ in 0..6 {
                let mut req: OpRequest<'_, f32> =
                    GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
                let run = capped
                    .submit_with(&mut req, RunOptions::with_host_cap(2))
                    .expect("capped gemm");
                assert!(run.plan.threads <= 2, "{run:?}");
                assert!(run.stats.exec.threads_used <= 2, "{run:?}");
            }
        });
    });
    let stats = sched.stats();
    assert_eq!(stats.completed, 18);
}
