//! Steady-state allocation behaviour of the serving hot path.
//!
//! The PR-4 tentpole claims `AdsalaService::run` performs **zero
//! packing-path heap allocations** once the arenas are warm. These tests
//! prove it with the workspace's own allocation counters (every arena
//! growth — the only packing-path allocation — bumps `allocations`):
//! after a warm-up call per shape, the counter must stop moving while
//! traffic keeps flowing, and the per-call `arena_bytes_reused` stat must
//! show the packing scratch being served warm.

use adsala::bundle::quick_test_bundle;
use adsala::prelude::*;
use adsala_gemm::workspace::thread_arena_stats;

fn service() -> AdsalaService {
    AdsalaService::with_config(
        quick_test_bundle().into_shared(),
        ServiceConfig { pool_workers: 4, ..ServiceConfig::default() },
    )
}

fn run_gemm(svc: &AdsalaService, m: usize, n: usize, k: usize) -> OpStats {
    let a = vec![1.0f32; m * k];
    let b = vec![0.5f32; k * n];
    let mut c = vec![0.0f32; m * n];
    let mut req: OpRequest<'_, f32> =
        GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
    let (_, stats) = svc.run(&mut req).expect("valid request");
    stats
}

#[test]
fn steady_state_service_traffic_allocates_nothing_on_the_packing_path() {
    let svc = service();
    let shapes = [(192usize, 192usize, 96usize), (256, 64, 128), (64, 64, 64)];

    // Warm-up: the first call per shape may grow pool-slot arenas, the
    // shared-B free list, and this client thread's local arena.
    for &(m, n, k) in &shapes {
        run_gemm(&svc, m, n, k);
        run_gemm(&svc, m, n, k);
    }

    // The packing path draws from two places: the pool workspace
    // (parallel grids) and the client thread's local arena (serial
    // decisions). Neither may allocate once warm.
    let ws_before = svc.workspace_stats();
    let tl_before = thread_arena_stats();
    for round in 0..10 {
        for &(m, n, k) in &shapes {
            let stats = run_gemm(&svc, m, n, k);
            assert!(
                stats.exec.arena_bytes_reused > 0,
                "round {round}: {m}x{n}x{k} did not reuse warm arena bytes: {stats:?}"
            );
        }
    }
    let ws_after = svc.workspace_stats();
    let tl_after = thread_arena_stats();
    assert_eq!(
        ws_after.allocations, ws_before.allocations,
        "pool workspace allocated during steady state: {ws_before:?} -> {ws_after:?}"
    );
    assert_eq!(
        tl_after.allocations, tl_before.allocations,
        "client thread arena allocated during steady state: {tl_before:?} -> {tl_after:?}"
    );
    assert!(
        ws_after.bytes_reused + tl_after.bytes_reused
            > ws_before.bytes_reused + tl_before.bytes_reused,
        "steady-state traffic must be served from warm arenas"
    );
}

#[test]
fn mixed_routine_steady_state_stays_warm() {
    // SYRK packs through the same arenas; GEMV packs nothing. Neither
    // may disturb the zero-allocation steady state.
    let svc = service();
    let (m, k) = (128usize, 64usize);
    let a = vec![1.0f64; m * k];
    let x = vec![1.0f64; k];

    let run_all = || {
        let mut c = vec![0.0f64; m * m];
        let mut req: OpRequest<'_, f64> =
            SyrkArgs { m, k, alpha: 1.0, a: &a, lda: k, beta: 0.0, c: &mut c, ldc: m }.into();
        svc.run(&mut req).expect("syrk");
        let mut y = vec![0.0f64; m];
        let mut req: OpRequest<'_, f64> =
            GemvArgs { m, n: k, alpha: 1.0, a: &a, lda: k, x: &x, beta: 0.0, y: &mut y }.into();
        svc.run(&mut req).expect("gemv");
    };
    run_all();
    run_all();
    let ws_before = svc.workspace_stats();
    let tl_before = thread_arena_stats();
    for _ in 0..8 {
        run_all();
    }
    assert_eq!(svc.workspace_stats().allocations, ws_before.allocations);
    assert_eq!(thread_arena_stats().allocations, tl_before.allocations);
}

#[test]
fn degenerate_shapes_report_wall_time_through_the_service() {
    // Satellite regression: m/n == 0 used to return a default-zero stats
    // struct; the service must now see a measured wall_ns.
    let svc = service();
    let stats = run_gemm(&svc, 0, 16, 16);
    assert!(stats.exec.wall_ns > 0, "degenerate call lost its wall time: {stats:?}");
    assert_eq!(stats.exec.threads_used, 0);
}
