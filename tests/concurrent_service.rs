//! Concurrency tests for the shared ADSALA serving layer: N client
//! threads hammering one `AdsalaService` through `&self`, the
//! pooled-vs-spawn execution equivalence the runtime path relies on, and
//! mixed-routine/mixed-precision traffic through the generic `run`
//! entry point.

use std::collections::HashMap;
use std::sync::Arc;

use adsala::bundle::quick_test_bundle as quick_bundle;
use adsala::prelude::*;
use adsala_gemm::gemm::{gemm_with_stats, GemmCall};

type ShapeKey = (u64, u64, u64);

#[test]
fn service_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AdsalaService>();
    assert_send_sync::<Arc<ArtifactBundle>>();
}

/// The tentpole stress test: overlapping shape streams from many clients,
/// deterministic decisions, consistent counters, every decision inside
/// the candidate ladder.
#[test]
fn concurrent_clients_get_deterministic_in_ladder_decisions() {
    let bundle = quick_bundle().into_shared();
    let service = AdsalaService::with_config(
        Arc::clone(&bundle),
        ServiceConfig {
            pool_workers: 4,
            cache_shards: 8,
            cache_capacity: 256,
            ..ServiceConfig::default()
        },
    );
    let n_clients = 8u64;
    let calls_per_client = 200u64;

    // Each client walks a different rotation of the same shape ring, so
    // streams overlap heavily but interleave differently per thread.
    let shapes: Vec<ShapeKey> =
        (0..25u64).map(|i| (32 + 16 * (i % 5), 64 + 128 * (i % 7), 32 + 8 * (i % 11))).collect();

    let per_client: Vec<Vec<(ShapeKey, PlanDecision)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_clients)
            .map(|client| {
                let service = &service;
                let shapes = &shapes;
                scope.spawn(move || {
                    let mut seen = Vec::new();
                    for i in 0..calls_per_client {
                        let idx = ((i + client * 7) % shapes.len() as u64) as usize;
                        let (m, k, n) = shapes[idx];
                        seen.push(((m, k, n), service.select_threads(m, k, n)));
                    }
                    seen
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client panicked")).collect()
    });

    // Determinism: every thread that decided a shape got the same count,
    // and that count is what a fresh sweep of the shared bundle yields.
    let mut agreed: HashMap<ShapeKey, u32> = HashMap::new();
    for decisions in &per_client {
        for &((m, k, n), d) in decisions {
            let expected =
                *agreed.entry((m, k, n)).or_insert_with(|| bundle.decide(m, k, n).threads());
            assert_eq!(d.threads(), expected, "non-deterministic decision for {m}x{k}x{n}");
            assert!(
                bundle.candidates().contains(&d.threads()),
                "decision {} outside the candidate ladder",
                d.threads()
            );
            assert!(d.predicted_runtime_s > 0.0);
        }
    }

    // Counter consistency: every select is exactly one cache lookup.
    let stats = service.cache_stats();
    let total_calls = n_clients * calls_per_client;
    assert_eq!(stats.lookups(), total_calls, "hits + misses must equal calls: {stats:?}");
    assert!(stats.hits > 0, "overlapping streams must produce memo hits");
    // Sweeps happen only on misses (racing misses may both sweep).
    assert!(service.evaluations() >= shapes.len() as u64);
    assert!(service.evaluations() <= stats.misses, "{stats:?}");
    assert!(stats.entries <= stats.capacity, "{stats:?}");
}

/// Adversarial shape streams cannot grow the memo past its bound.
#[test]
fn cache_stays_bounded_under_adversarial_stream() {
    let service = AdsalaService::with_config(
        quick_bundle().into_shared(),
        ServiceConfig {
            pool_workers: 1,
            cache_shards: 4,
            cache_capacity: 32,
            ..ServiceConfig::default()
        },
    );
    std::thread::scope(|scope| {
        for client in 0..4u64 {
            let service = &service;
            scope.spawn(move || {
                for i in 0..500u64 {
                    // Almost every key is fresh: a worst-case stream.
                    let v = client * 1000 + i;
                    service.select_threads(32 + v, 64 + v, 32 + (v % 97));
                }
            });
        }
    });
    let stats = service.cache_stats();
    assert!(stats.entries <= stats.capacity, "{stats:?}");
    assert!(stats.evictions > 0, "an adversarial stream must trigger evictions: {stats:?}");
    assert_eq!(stats.lookups(), 2000);
}

/// Concurrent `sgemm` calls through one shared service must all be
/// correct, and the pooled execution path must produce bitwise-identical
/// output to the spawn-per-call driver.
#[test]
fn concurrent_sgemm_matches_spawn_path_bitwise() {
    let service = AdsalaService::with_config(
        quick_bundle().into_shared(),
        ServiceConfig { pool_workers: 4, ..ServiceConfig::default() },
    );
    let cases: Vec<(usize, usize, usize)> =
        vec![(33, 17, 29), (64, 64, 64), (96, 40, 72), (20, 128, 24)];

    std::thread::scope(|scope| {
        for &(m, k, n) in &cases {
            let service = &service;
            scope.spawn(move || {
                let a: Vec<f32> = (0..m * k).map(|i| (i % 13) as f32 - 6.0).collect();
                let b: Vec<f32> = (0..k * n).map(|i| (i % 11) as f32 * 0.25).collect();
                for _ in 0..3 {
                    let mut c_pooled = vec![1.0f32; m * n];
                    let (decision, stats) = service
                        .sgemm(m, n, k, 1.5, &a, k, &b, n, 0.5, &mut c_pooled, n, 4)
                        .expect("well-formed sgemm");
                    assert!(stats.exec.threads_used >= 1);

                    // Same thread request through the spawn-per-call driver.
                    let threads = decision.threads().clamp(1, 4) as usize;
                    let mut c_spawn = vec![1.0f32; m * n];
                    let call = GemmCall::new(m, n, k, threads);
                    gemm_with_stats(&call, 1.5, &a, k, &b, n, 0.5, &mut c_spawn, n);
                    assert_eq!(
                        c_pooled, c_spawn,
                        "pooled and spawn paths diverged for {m}x{k}x{n}"
                    );
                }
            });
        }
    });
}

/// The acceptance stress test for the op-descriptor redesign: one
/// `AdsalaService` serving f32 GEMM, f64 GEMM, f64 SYRK, and f32 GEMV
/// concurrently through the same `run(..)` entry point, every result
/// bitwise-equal to the corresponding direct kernel call at the decided
/// thread count.
#[test]
fn mixed_routine_traffic_matches_direct_kernels_bitwise() {
    let service = AdsalaService::with_config(
        quick_bundle().into_shared(),
        ServiceConfig { pool_workers: 4, ..ServiceConfig::default() },
    );
    let rounds = 3usize;
    let cap = 4u32;

    std::thread::scope(|scope| {
        // Client 1: f32 GEMM.
        let svc = &service;
        scope.spawn(move || {
            let (m, n, k) = (48usize, 40usize, 32usize);
            let a: Vec<f32> = (0..m * k).map(|i| (i % 13) as f32 - 6.0).collect();
            let b: Vec<f32> = (0..k * n).map(|i| (i % 11) as f32 * 0.25).collect();
            for _ in 0..rounds {
                let mut c = vec![1.0f32; m * n];
                let mut req: OpRequest<'_, f32> =
                    GemmArgs::untransposed(m, n, k, 1.5, &a, k, &b, n, 0.5, &mut c, n).into();
                let (d, stats) =
                    svc.run_with(&mut req, RunOptions::with_host_cap(cap)).expect("f32 gemm");
                assert_eq!((stats.routine, stats.precision), (Routine::Gemm, Precision::F32));
                let threads = d.threads().clamp(1, cap) as usize;
                let mut c_direct = vec![1.0f32; m * n];
                let call = GemmCall::new(m, n, k, threads);
                gemm_with_stats(&call, 1.5, &a, k, &b, n, 0.5, &mut c_direct, n);
                assert_eq!(c, c_direct, "f32 GEMM diverged from direct kernel");
            }
        });

        // Client 2: f64 GEMM.
        scope.spawn(move || {
            let (m, n, k) = (36usize, 52usize, 24usize);
            let a: Vec<f64> = (0..m * k).map(|i| (i % 9) as f64 - 4.0).collect();
            let b: Vec<f64> = (0..k * n).map(|i| (i % 7) as f64 * 0.5).collect();
            for _ in 0..rounds {
                let mut c = vec![2.0f64; m * n];
                let (d, stats) =
                    svc.dgemm(m, n, k, 1.0, &a, k, &b, n, -0.5, &mut c, n, cap).expect("f64 gemm");
                assert_eq!((stats.routine, stats.precision), (Routine::Gemm, Precision::F64));
                let threads = d.threads().clamp(1, cap) as usize;
                let mut c_direct = vec![2.0f64; m * n];
                let call = GemmCall::new(m, n, k, threads);
                gemm_with_stats(&call, 1.0, &a, k, &b, n, -0.5, &mut c_direct, n);
                assert_eq!(c, c_direct, "f64 GEMM diverged from direct kernel");
            }
        });

        // Client 3: f64 SYRK.
        scope.spawn(move || {
            let (m, k) = (50usize, 20usize);
            let a: Vec<f64> = (0..m * k).map(|i| (i % 17) as f64 - 8.0).collect();
            for _ in 0..rounds {
                let mut c = vec![0.5f64; m * m];
                let mut req: OpRequest<'_, f64> =
                    SyrkArgs { m, k, alpha: 2.0, a: &a, lda: k, beta: 0.25, c: &mut c, ldc: m }
                        .into();
                let (d, stats) =
                    svc.run_with(&mut req, RunOptions::with_host_cap(cap)).expect("f64 syrk");
                assert_eq!((stats.routine, stats.precision), (Routine::Syrk, Precision::F64));
                let threads = d.threads().clamp(1, cap) as usize;
                let mut c_direct = vec![0.5f64; m * m];
                adsala_gemm::syrk_with_stats(m, k, 2.0, &a, k, 0.25, &mut c_direct, m, threads);
                assert_eq!(c, c_direct, "SYRK diverged from direct kernel");
            }
        });

        // Client 4: f32 GEMV.
        scope.spawn(move || {
            let (m, n) = (300usize, 80usize);
            let a: Vec<f32> = (0..m * n).map(|i| (i % 5) as f32 - 2.0).collect();
            let x: Vec<f32> = (0..n).map(|i| (i % 3) as f32 * 0.5).collect();
            for _ in 0..rounds {
                let mut y = vec![1.0f32; m];
                let mut req: OpRequest<'_, f32> =
                    GemvArgs { m, n, alpha: 1.0, a: &a, lda: n, x: &x, beta: 0.5, y: &mut y }
                        .into();
                let (d, stats) =
                    svc.run_with(&mut req, RunOptions::with_host_cap(cap)).expect("f32 gemv");
                assert_eq!((stats.routine, stats.precision), (Routine::Gemv, Precision::F32));
                let threads = d.threads().clamp(1, cap) as usize;
                let mut y_direct = vec![1.0f32; m];
                adsala_gemm::gemv_with_stats(m, n, 1.0, &a, n, &x, 0.5, &mut y_direct, threads);
                assert_eq!(y, y_direct, "GEMV diverged from direct kernel");
            }
        });
    });

    // Four distinct (routine, precision, shape) keys; every client's later
    // rounds hit the memo.
    let stats = service.cache_stats();
    assert_eq!(stats.lookups(), 4 * rounds as u64);
    assert_eq!(stats.entries, 4, "{stats:?}");
    assert!(stats.hits >= 4 * (rounds as u64 - 1), "{stats:?}");
}

/// Malformed requests racing well-formed ones: the bad ones all error,
/// the good ones all succeed, and no serving thread panics.
#[test]
fn malformed_requests_error_cleanly_under_concurrency() {
    let service = AdsalaService::with_config(
        quick_bundle().into_shared(),
        ServiceConfig { pool_workers: 2, ..ServiceConfig::default() },
    );
    std::thread::scope(|scope| {
        for client in 0..4usize {
            let svc = &service;
            scope.spawn(move || {
                let (m, n, k) = (24usize, 24usize, 24usize);
                let a = vec![1.0f32; m * k];
                let b = vec![1.0f32; k * n];
                for round in 0..8usize {
                    if (client + round) % 2 == 0 {
                        let mut c = vec![0.0f32; m * n];
                        let mut req: OpRequest<'_, f32> =
                            GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n)
                                .into();
                        svc.run(&mut req).expect("well-formed request must serve");
                    } else {
                        let mut c = vec![0.0f32; m]; // far too small
                        let mut req: OpRequest<'_, f32> =
                            GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n)
                                .into();
                        match svc.run(&mut req) {
                            Err(AdsalaError::Shape(e)) => assert_eq!(e.routine, Routine::Gemm),
                            other => panic!("expected shape error, got {other:?}"),
                        }
                    }
                }
            });
        }
    });
}
