//! Concurrency tests for the shared ADSALA serving layer: N client
//! threads hammering one `AdsalaService` through `&self`, plus the
//! pooled-vs-spawn execution equivalence the runtime path relies on.

use std::collections::HashMap;
use std::sync::Arc;

use adsala::bundle::quick_test_bundle as quick_bundle;
use adsala::{AdsalaService, ArtifactBundle, ServiceConfig, ThreadDecision};
use adsala_gemm::gemm::{gemm_with_stats, GemmCall};

type ShapeKey = (u64, u64, u64);

#[test]
fn service_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AdsalaService>();
    assert_send_sync::<Arc<ArtifactBundle>>();
}

/// The tentpole stress test: overlapping shape streams from many clients,
/// deterministic decisions, consistent counters, every decision inside
/// the candidate ladder.
#[test]
fn concurrent_clients_get_deterministic_in_ladder_decisions() {
    let bundle = quick_bundle().into_shared();
    let service = AdsalaService::with_config(
        Arc::clone(&bundle),
        ServiceConfig { pool_workers: 4, cache_shards: 8, cache_capacity: 256 },
    );
    let n_clients = 8u64;
    let calls_per_client = 200u64;

    // Each client walks a different rotation of the same shape ring, so
    // streams overlap heavily but interleave differently per thread.
    let shapes: Vec<ShapeKey> =
        (0..25u64).map(|i| (32 + 16 * (i % 5), 64 + 128 * (i % 7), 32 + 8 * (i % 11))).collect();

    let per_client: Vec<Vec<(ShapeKey, ThreadDecision)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_clients)
            .map(|client| {
                let service = &service;
                let shapes = &shapes;
                scope.spawn(move || {
                    let mut seen = Vec::new();
                    for i in 0..calls_per_client {
                        let idx = ((i + client * 7) % shapes.len() as u64) as usize;
                        let (m, k, n) = shapes[idx];
                        seen.push(((m, k, n), service.select_threads(m, k, n)));
                    }
                    seen
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client panicked")).collect()
    });

    // Determinism: every thread that decided a shape got the same count,
    // and that count is what a fresh sweep of the shared bundle yields.
    let mut agreed: HashMap<ShapeKey, u32> = HashMap::new();
    for decisions in &per_client {
        for &((m, k, n), d) in decisions {
            let expected =
                *agreed.entry((m, k, n)).or_insert_with(|| bundle.decide(m, k, n).threads);
            assert_eq!(d.threads, expected, "non-deterministic decision for {m}x{k}x{n}");
            assert!(
                bundle.candidates.contains(&d.threads),
                "decision {} outside the candidate ladder",
                d.threads
            );
            assert!(d.predicted_runtime_s > 0.0);
        }
    }

    // Counter consistency: every select is exactly one cache lookup.
    let stats = service.cache_stats();
    let total_calls = n_clients * calls_per_client;
    assert_eq!(stats.lookups(), total_calls, "hits + misses must equal calls: {stats:?}");
    assert!(stats.hits > 0, "overlapping streams must produce memo hits");
    // Sweeps happen only on misses (racing misses may both sweep).
    assert!(service.evaluations() >= shapes.len() as u64);
    assert!(service.evaluations() <= stats.misses, "{stats:?}");
    assert!(stats.entries <= stats.capacity, "{stats:?}");
}

/// Adversarial shape streams cannot grow the memo past its bound.
#[test]
fn cache_stays_bounded_under_adversarial_stream() {
    let service = AdsalaService::with_config(
        quick_bundle().into_shared(),
        ServiceConfig { pool_workers: 1, cache_shards: 4, cache_capacity: 32 },
    );
    std::thread::scope(|scope| {
        for client in 0..4u64 {
            let service = &service;
            scope.spawn(move || {
                for i in 0..500u64 {
                    // Almost every key is fresh: a worst-case stream.
                    let v = client * 1000 + i;
                    service.select_threads(32 + v, 64 + v, 32 + (v % 97));
                }
            });
        }
    });
    let stats = service.cache_stats();
    assert!(stats.entries <= stats.capacity, "{stats:?}");
    assert!(stats.evictions > 0, "an adversarial stream must trigger evictions: {stats:?}");
    assert_eq!(stats.lookups(), 2000);
}

/// Concurrent `sgemm` calls through one shared service must all be
/// correct, and the pooled execution path must produce bitwise-identical
/// output to the spawn-per-call driver.
#[test]
fn concurrent_sgemm_matches_spawn_path_bitwise() {
    let service = AdsalaService::with_config(
        quick_bundle().into_shared(),
        ServiceConfig { pool_workers: 4, ..ServiceConfig::default() },
    );
    let cases: Vec<(usize, usize, usize)> =
        vec![(33, 17, 29), (64, 64, 64), (96, 40, 72), (20, 128, 24)];

    std::thread::scope(|scope| {
        for &(m, k, n) in &cases {
            let service = &service;
            scope.spawn(move || {
                let a: Vec<f32> = (0..m * k).map(|i| (i % 13) as f32 - 6.0).collect();
                let b: Vec<f32> = (0..k * n).map(|i| (i % 11) as f32 * 0.25).collect();
                for _ in 0..3 {
                    let mut c_pooled = vec![1.0f32; m * n];
                    let (decision, stats) =
                        service.sgemm(m, n, k, 1.5, &a, k, &b, n, 0.5, &mut c_pooled, n, 4);
                    assert!(stats.threads_used >= 1);

                    // Same thread request through the spawn-per-call driver.
                    let threads = decision.threads.clamp(1, 4) as usize;
                    let mut c_spawn = vec![1.0f32; m * n];
                    let call = GemmCall::new(m, n, k, threads);
                    gemm_with_stats(&call, 1.5, &a, k, &b, n, 0.5, &mut c_spawn, n);
                    assert_eq!(
                        c_pooled, c_spawn,
                        "pooled and spawn paths diverged for {m}x{k}x{n}"
                    );
                }
            });
        }
    });
}
