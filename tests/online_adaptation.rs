//! The online-adaptation acceptance tests: a hot-swap landing in the
//! middle of an 8-client flood without torn reads or blocked submits,
//! and the end-to-end drift story — accurate service drifts under an
//! injected slowdown, the detector trips, a retrain from observed
//! timings hot-swaps a refreshed bundle, and the prediction error
//! recovers under the same (still slowed) traffic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use adsala::bundle::quick_test_bundle as quick_bundle;
use adsala::prelude::*;
use adsala_gemm::gemm::{gemm_with_stats, GemmCall};
use adsala_repro::adsala_machine::noise::{combine, drift_slowdown, lognormal_factor};

/// Seconds → the integer-nanosecond wall measurements the loop consumes.
fn ns(seconds: f64) -> u64 {
    (seconds * 1e9).round().max(1.0) as u64
}

/// The hot-swap stress test: 8 clients flood one service with GEMM
/// requests while bundle swaps land mid-flight. Every submit completes
/// (none blocked, none dropped), every result is bitwise-identical to
/// the direct kernel at the decided thread count in every epoch, and
/// each swap retires the memo so post-swap decisions are fresh sweeps.
#[test]
fn hot_swap_mid_flood_keeps_results_bitwise_stable() {
    const SHAPES: [(usize, usize, usize); 4] =
        [(48, 40, 32), (33, 17, 29), (64, 64, 64), (20, 96, 24)];
    const N_CLIENTS: usize = 8;
    const N_SWAPS: u64 = 5;
    const CAP: u32 = 4;

    let service = AdsalaService::with_config(
        quick_bundle().into_shared(),
        ServiceConfig { pool_workers: 4, ..ServiceConfig::default() },
    );
    let done = AtomicBool::new(false);
    let ops = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for client in 0..N_CLIENTS {
            let (service, done, ops) = (&service, &done, &ops);
            scope.spawn(move || {
                let (m, n, k) = SHAPES[client % SHAPES.len()];
                let a: Vec<f32> = (0..m * k).map(|i| (i % 13) as f32 - 6.0).collect();
                let b: Vec<f32> = (0..k * n).map(|i| (i % 11) as f32 * 0.25).collect();
                // Reference output per decided thread count, computed
                // through the spawn-per-call driver the pooled path must
                // match bitwise (plan equivalence), lazily per client.
                let mut references: HashMap<u32, Vec<f32>> = HashMap::new();
                let mut serve = |epoch_tail: bool| {
                    let mut c = vec![1.0f32; m * n];
                    let mut req: OpRequest<'_, f32> =
                        GemmArgs::untransposed(m, n, k, 1.5, &a, k, &b, n, 0.5, &mut c, n).into();
                    let (decision, stats) = service
                        .run_with(&mut req, RunOptions::with_host_cap(CAP))
                        .expect("submit must never fail during a swap");
                    assert!(stats.exec.threads_used >= 1);
                    let threads = decision.threads();
                    assert!((1..=CAP).contains(&threads));
                    let reference = references.entry(threads).or_insert_with(|| {
                        let mut c_ref = vec![1.0f32; m * n];
                        let call = GemmCall::new(m, n, k, threads as usize);
                        gemm_with_stats(&call, 1.5, &a, k, &b, n, 0.5, &mut c_ref, n);
                        c_ref
                    });
                    assert_eq!(
                        &c, reference,
                        "torn result for {m}x{n}x{k} at {threads} threads (tail={epoch_tail})"
                    );
                    ops.fetch_add(1, Ordering::Relaxed);
                };
                while !done.load(Ordering::Relaxed) {
                    serve(false);
                }
                // A few more requests against the final epoch: the
                // service must serve normally after the last swap too.
                for _ in 0..3 {
                    serve(true);
                }
                // Identical models across every epoch ⇒ one deterministic
                // decision per shape ⇒ exactly one reference output.
                assert_eq!(
                    references.len(),
                    1,
                    "swapping identical models must not change the decision"
                );
            });
        }

        // The swapper: wait until the flood has demonstrably progressed,
        // then publish a refreshed (identical-model) bundle, five times.
        let swapper_service = &service;
        let (done, ops) = (&done, &ops);
        scope.spawn(move || {
            for s in 0..N_SWAPS {
                let target = ops.load(Ordering::Relaxed) + 32;
                while ops.load(Ordering::Relaxed) < target {
                    std::thread::yield_now();
                }
                let bundle = swapper_service.bundle();
                let refreshed = bundle.refreshed(bundle.models.clone()).into_shared();
                let generation = swapper_service.swap_bundle(refreshed);
                assert_eq!(generation, s + 1, "each swap bumps the epoch exactly once");
            }
            done.store(true, Ordering::Relaxed);
        });
    });

    let stats = service.stats();
    assert_eq!(stats.swaps, N_SWAPS);
    assert_eq!(stats.generation, N_SWAPS);
    // No blocked or dropped submits: every run was exactly one memo
    // lookup, and every one of them completed.
    let total_ops = ops.load(Ordering::Relaxed);
    assert!(total_ops >= N_SWAPS * 32);
    assert_eq!(stats.cache.lookups(), total_ops, "{stats:?}");
    // Distinct (shape, cap) keys decided at least once, plus at least
    // one fresh re-sweep per post-swap epoch: swaps really retire the
    // memo rather than serving stale decisions.
    assert!(
        stats.evaluations >= (SHAPES.len() as u64) + N_SWAPS,
        "swaps must force re-evaluation: {stats:?}"
    );
    // The feedback loop saw the flood even with default (disabled) knobs.
    assert!(stats.reservoir.recorded > 0);
}

/// Shapes the drift scenario serves, all decided at a 1-thread cap so
/// the (threads-only) quick bundle pins one plan per shape and the
/// injected ground truth stays a function of the shape alone.
fn drift_shapes() -> Vec<OpShape> {
    (0..8u64)
        .map(|i| OpShape::gemm(Precision::F32, 32 + 16 * (i % 4), 64 + 64 * (i % 3), 32 + 8 * i))
        .collect()
}

/// The end-to-end acceptance scenario, fully deterministic via the
/// simulator-grade noise helpers: healthy traffic (measurements match
/// the model) → a sustained 3× injected slowdown trips the detector and
/// conservative fallbacks kick in → `retrain_now` refits GEMM from the
/// drifted observations and hot-swaps → the same slowed traffic now
/// matches the refreshed model, the detector stays untripped, and the
/// rolling error lands back inside the recovery band.
#[test]
fn drift_trips_retrain_swaps_and_error_recovers() {
    const SEED: u64 = 0x0_D21F;
    const SEVERITY: f64 = 3.0;
    const SIGMA: f64 = 0.02;
    const ROUNDS: u64 = 8;

    let bundle = quick_bundle().into_shared();
    let service = AdsalaService::with_config(
        Arc::clone(&bundle),
        ServiceConfig {
            pool_workers: 2,
            online: OnlineConfig::enabled(),
            ..ServiceConfig::default()
        },
    );
    let shapes = drift_shapes();
    // Ground truth: the install-time model is perfect at t = 0, so the
    // "machine" runs each pinned plan in exactly the time the original
    // bundle predicts — until the injected slowdown multiplies it.
    let baseline: HashMap<OpShape, f64> =
        shapes.iter().map(|&s| (s, bundle.decide_op_capped(s, 1).predicted_runtime_s)).collect();
    assert!(baseline.values().all(|&p| p > 0.0));

    // Phase 1 — healthy: measured ≈ predicted, detector must stay cold.
    for round in 0..ROUNDS {
        for (j, &shape) in shapes.iter().enumerate() {
            let d = service.select_for_capped(shape, 1);
            let noise = lognormal_factor(combine(&[SEED, round, j as u64]), SIGMA);
            service.observe(shape, &d.plan, d.predicted_runtime_s, ns(baseline[&shape] * noise));
        }
    }
    assert!(!service.is_drifted(), "healthy traffic must not trip: {:?}", service.drift_snapshot());
    assert!(service.prediction_stats().mean_abs_log_error < 0.1);
    // The retrainer should see only post-drift observations.
    let healthy = service.drain_observations();
    assert_eq!(healthy.len(), (ROUNDS as usize) * shapes.len());

    // Phase 2 — drift: a sustained 3× slowdown (ln 3 ≈ 1.10, far over
    // the 0.35 trip band) on every GEMM.
    for round in 0..ROUNDS {
        for (j, &shape) in shapes.iter().enumerate() {
            let d = service.select_for_capped(shape, 1);
            let factor = drift_slowdown(combine(&[SEED, 1, round]), j as u64, SEVERITY, SIGMA);
            service.observe(shape, &d.plan, d.predicted_runtime_s, ns(baseline[&shape] * factor));
        }
    }
    assert!(service.is_drifted(), "{:?}", service.drift_snapshot());
    let snapshot = service.drift_snapshot();
    assert_eq!(snapshot.trips, 1);
    assert!(snapshot.for_routine(Routine::Gemm).ewma_abs_log_error > 0.35, "{snapshot:?}");
    let error_before = service.prediction_stats().mean_abs_log_error;
    assert!(error_before > 0.35, "drifted error must be visible: {error_before}");

    // While tripped, real requests are served with the conservative
    // fallback plan instead of the disowned model's choice.
    let (m, n, k) = (96usize, 48usize, 32usize);
    let a = vec![1.0f32; m * k];
    let b = vec![1.0f32; k * n];
    let mut c = vec![0.0f32; m * n];
    let mut req: OpRequest<'_, f32> =
        GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
    let (fallback, _) = service.run_with(&mut req, RunOptions::with_host_cap(1)).unwrap();
    assert_eq!(service.drift_fallbacks(), 1);
    assert!(!fallback.memoised, "fallback decisions must not be memoised");
    assert_eq!(fallback.threads(), 1);

    // Retrain from what the loop observed and hot-swap the result.
    let cfg = RetrainConfig { min_observations: 32, ..RetrainConfig::default() };
    let outcome = retrain_now(&service, &cfg).unwrap();
    assert!(outcome.swapped(), "{outcome:?}");
    assert_eq!(outcome.retrained, vec![Routine::Gemm]);
    assert!(outcome.observations >= (ROUNDS as usize) * shapes.len());
    assert_eq!(outcome.swap_generation, Some(1));
    assert_eq!(service.generation(), 1);
    assert_eq!(service.swaps(), 1);
    assert!(!service.is_drifted(), "a swap resets the detector");

    // Phase 3 — recovery: the machine is STILL 3× slower, but the
    // refreshed model learned that from the observations, so fresh
    // decisions predict the slowed runtimes and the error collapses.
    for round in 0..ROUNDS {
        for (j, &shape) in shapes.iter().enumerate() {
            let d = service.select_for_capped(shape, 1);
            let factor = drift_slowdown(combine(&[SEED, 2, round]), j as u64, SEVERITY, SIGMA);
            service.observe(shape, &d.plan, d.predicted_runtime_s, ns(baseline[&shape] * factor));
        }
    }
    let after = service.prediction_stats();
    assert_eq!(after.samples, ROUNDS * shapes.len() as u64);
    assert!(
        !service.is_drifted(),
        "retrained model must track the slowed machine: {:?}",
        service.drift_snapshot()
    );
    assert!(
        after.mean_abs_log_error < 0.15,
        "post-retrain error must sit inside the recovery band: {after:?}"
    );
    assert!(after.mean_abs_log_error < error_before);
    assert_eq!(service.drift_snapshot().trips, 1, "recovery must come from the swap, not re-trips");
    // Model-trusting serving is restored: decisions memoise again.
    let d = service.select_for_capped(shapes[0], 1);
    assert!(d.memoised);
    assert_eq!(service.drift_fallbacks(), 1);
}

/// The background adapter closes the loop on its own thread: a tripped
/// detector is enough — no explicit trigger — for it to drain the
/// reservoir, refit, and hot-swap, after which the detector is reset.
#[test]
fn online_adapter_retrains_and_swaps_in_background() {
    const SEED: u64 = 0xADA9;

    let bundle = quick_bundle().into_shared();
    let service = Arc::new(AdsalaService::with_config(
        Arc::clone(&bundle),
        ServiceConfig {
            pool_workers: 1,
            online: OnlineConfig::enabled(),
            ..ServiceConfig::default()
        },
    ));
    let shapes = drift_shapes();
    for round in 0..8u64 {
        for (j, &shape) in shapes.iter().enumerate() {
            let d = service.select_for_capped(shape, 1);
            let factor = drift_slowdown(combine(&[SEED, round]), j as u64, 2.5, 0.02);
            service.observe(
                shape,
                &d.plan,
                d.predicted_runtime_s,
                ns(d.predicted_runtime_s * factor),
            );
        }
    }
    assert!(service.is_drifted());

    let adapter = OnlineAdapter::spawn(
        Arc::clone(&service),
        RetrainConfig {
            min_observations: 32,
            poll_interval: Duration::from_millis(5),
            ..RetrainConfig::default()
        },
    );
    let deadline = Instant::now() + Duration::from_secs(60);
    while service.swaps() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(service.swaps() >= 1, "adapter never swapped: {:?}", adapter.last_outcome());
    assert!(adapter.retrain_passes() >= 1);
    assert_eq!(adapter.swaps(), 1);
    assert_eq!(adapter.errors(), 0);
    let outcome = adapter.last_outcome().expect("a completed pass records its outcome");
    assert!(outcome.swapped());
    assert_eq!(outcome.retrained, vec![Routine::Gemm]);
    assert!(service.generation() >= 1);
    assert!(!service.is_drifted(), "the swap resets the detector");
    adapter.shutdown();
}
