//! Plan-equivalence coverage: every plan the candidate grid can emit —
//! each combination of thread count, ISA choice, block scale, and packing
//! strategy — must compute the correct product across transpose combos
//! and skewed shapes, match the scoped driver bitwise when executed on
//! the persistent pool, and (for scalar-ISA plans) be invariant to the
//! thread count and packing strategy.

use adsala_repro::adsala_gemm::dispatch::Precision;
use adsala_repro::adsala_gemm::gemm::{gemm_with_stats, gemm_with_stats_pooled, GemmCall};
use adsala_repro::adsala_gemm::naive::naive_gemm;
use adsala_repro::adsala_gemm::plan::{
    ExecutionPlan, IsaChoice, PackingStrategy, PlanGrid, PlanPoint,
};
use adsala_repro::adsala_gemm::pool::ThreadPool;
use adsala_repro::adsala_gemm::Transpose;

/// `(m, n, k, trans_a, trans_b)`: a square mid-size call plus skewed and
/// sub-register-tile shapes, each with a different transpose combination.
const CASES: &[(usize, usize, usize, bool, bool)] = &[
    (64, 64, 64, false, false),
    (7, 93, 5, true, false),
    (80, 9, 33, false, true),
    (33, 48, 40, true, true),
    (1, 257, 1, false, false),
];

fn fill<T: From<f32>>(n: usize, seed: u64) -> Vec<T> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            T::from(((s % 1000) as f32 - 500.0) / 100.0)
        })
        .collect()
}

fn transposes(ta: bool, tb: bool) -> (Transpose, Transpose) {
    let t = |flag| if flag { Transpose::Yes } else { Transpose::No };
    (t(ta), t(tb))
}

/// Stored-operand dimensions and leading strides for a transposed call.
fn strides(
    m: usize,
    n: usize,
    k: usize,
    ta: Transpose,
    tb: Transpose,
) -> (usize, usize, usize, usize) {
    let (ar, ac) = if ta.is_transposed() { (k, m) } else { (m, k) };
    let (br, bc) = if tb.is_transposed() { (n, k) } else { (k, n) };
    (ar * ac, br * bc, ac.max(1), bc.max(1))
}

macro_rules! grid_plans_are_correct_and_pool_invariant {
    ($name:ident, $t:ty, $precision:expr, $tol:expr) => {
        #[test]
        fn $name() {
            let grid = PlanGrid::full(vec![1, 3]);
            let pool = ThreadPool::new(3);
            for (idx, point) in grid.points().enumerate() {
                let plan = point.materialise($precision);
                for &(m, n, k, ta, tb) in CASES {
                    let (ta, tb) = transposes(ta, tb);
                    let (a_len, b_len, lda, ldb) = strides(m, n, k, ta, tb);
                    let seed = idx as u64 * 31 + m as u64;
                    let a: Vec<$t> = fill(a_len.max(1), seed);
                    let b: Vec<$t> = fill(b_len.max(1), seed + 1);
                    let mut c_scoped: Vec<$t> = fill(m * n, seed + 2);
                    let mut c_pooled = c_scoped.clone();
                    let mut c_ref = c_scoped.clone();
                    let alpha = <$t>::from(1.25f32);
                    let beta = <$t>::from(-0.5f32);

                    let call = GemmCall { trans_a: ta, trans_b: tb, ..GemmCall::new(m, n, k, 1) }
                        .with_plan(plan);
                    gemm_with_stats(&call, alpha, &a, lda, &b, ldb, beta, &mut c_scoped, n);
                    gemm_with_stats_pooled(
                        &pool, &call, alpha, &a, lda, &b, ldb, beta, &mut c_pooled, n,
                    );
                    naive_gemm(ta, tb, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c_ref, n);

                    for (i, (x, y)) in c_scoped.iter().zip(&c_ref).enumerate() {
                        let (x, y) = (f64::from(*x), f64::from(*y));
                        assert!(
                            (x - y).abs() <= $tol * (1.0 + y.abs()),
                            "plan [{}] wrong at {i} for {m}x{n}x{k} ta={ta:?} tb={tb:?}: {x} vs {y}",
                            plan.describe()
                        );
                    }
                    assert_eq!(
                        c_scoped,
                        c_pooled,
                        "pooled execution drifted from the scoped driver for plan [{}] \
                         on {m}x{n}x{k} ta={ta:?} tb={tb:?}",
                        plan.describe()
                    );
                }
            }
        }
    };
}

grid_plans_are_correct_and_pool_invariant!(
    every_f64_grid_plan_is_correct_and_pool_invariant,
    f64,
    Precision::F64,
    1e-9
);
grid_plans_are_correct_and_pool_invariant!(
    every_f32_grid_plan_is_correct_and_pool_invariant,
    f32,
    Precision::F32,
    1e-4
);

/// Scalar-ISA plans must be bitwise invariant to the thread count and the
/// packing strategy: threads split `M`/`N` (never the `K` accumulation)
/// and both packing strategies materialise identical panels, so only the
/// blocking axis may legitimately change the result bits.
#[test]
fn scalar_plans_are_thread_and_packing_invariant() {
    let grid = PlanGrid::full(vec![1, 2, 5]);
    let pool = ThreadPool::new(4);
    for point in grid.points().filter(|p| p.isa == IsaChoice::Scalar) {
        let plan = point.materialise(Precision::F64);
        let reference = ExecutionPlan { threads: 1, packing: PackingStrategy::SharedB, ..plan };
        for &(m, n, k, ta, tb) in CASES {
            let (ta, tb) = transposes(ta, tb);
            let (a_len, b_len, lda, ldb) = strides(m, n, k, ta, tb);
            let a: Vec<f64> = fill(a_len.max(1), 17);
            let b: Vec<f64> = fill(b_len.max(1), 18);
            let mut c_plan: Vec<f64> = fill(m * n, 19);
            let mut c_ref = c_plan.clone();

            let base = GemmCall { trans_a: ta, trans_b: tb, ..GemmCall::new(m, n, k, 1) };
            gemm_with_stats_pooled(
                &pool,
                &base.with_plan(plan),
                1.0,
                &a,
                lda,
                &b,
                ldb,
                0.5,
                &mut c_plan,
                n,
            );
            gemm_with_stats(&base.with_plan(reference), 1.0, &a, lda, &b, ldb, 0.5, &mut c_ref, n);
            assert_eq!(
                c_plan,
                c_ref,
                "scalar plan [{}] must match its single-threaded shared-B form bitwise \
                 on {m}x{n}x{k} ta={ta:?} tb={tb:?}",
                plan.describe()
            );
        }
    }
}

/// A materialised threads-only grid point must execute exactly like the
/// plain (pre-plan) entry point — this is the execution-layer half of the
/// v1/v2 artefact migration guarantee.
#[test]
fn threads_only_points_execute_like_the_plain_call() {
    for threads in [1u32, 4] {
        let plan = PlanPoint::threads_only(threads).materialise(Precision::F64);
        assert!(plan.is_threads_only());
        for &(m, n, k, ta, tb) in CASES {
            let (ta, tb) = transposes(ta, tb);
            let (a_len, b_len, lda, ldb) = strides(m, n, k, ta, tb);
            let a: Vec<f64> = fill(a_len.max(1), 23);
            let b: Vec<f64> = fill(b_len.max(1), 24);
            let mut c_plan: Vec<f64> = fill(m * n, 25);
            let mut c_plain = c_plan.clone();

            let plain =
                GemmCall { trans_a: ta, trans_b: tb, ..GemmCall::new(m, n, k, threads as usize) };
            gemm_with_stats(&plain.with_plan(plan), 2.0, &a, lda, &b, ldb, -1.0, &mut c_plan, n);
            gemm_with_stats(&plain, 2.0, &a, lda, &b, ldb, -1.0, &mut c_plain, n);
            assert_eq!(
                c_plan, c_plain,
                "threads-only plan t={threads} drifted from the plain call on {m}x{n}x{k}"
            );
        }
    }
}
