//! Property-based invariants of the ML pipeline: preprocessing
//! transforms, feature construction, and model behaviour on arbitrary
//! (but valid) inputs.

use adsala_repro::adsala::{build_features, FEATURE_COUNT};
use adsala_repro::adsala_ml::data::{label_strata, stratified_split, Matrix};
use adsala_repro::adsala_ml::preprocess::yeo_johnson::{
    inverse_value, transform_value, YeoJohnson,
};
use adsala_repro::adsala_ml::preprocess::{CorrelationPruner, StandardScaler};
use adsala_repro::adsala_ml::{AnyModel, ModelKind, Regressor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn yeo_johnson_is_monotone_and_invertible(
        lambda in -4.0f64..4.0,
        a in -50.0f64..50.0,
        b in -50.0f64..50.0,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (tl, th) = (transform_value(lo, lambda), transform_value(hi, lambda));
        prop_assert!(tl <= th, "not monotone: ψ({lo})={tl} > ψ({hi})={th} at λ={lambda}");
        let back = inverse_value(tl, lambda);
        prop_assert!(
            (back - lo).abs() < 1e-6 * (1.0 + lo.abs()),
            "inverse broke: {lo} -> {tl} -> {back} at λ={lambda}"
        );
    }

    #[test]
    fn features_are_finite_and_positive_thread_scaling(
        m in 1u64..80_000,
        k in 1u64..80_000,
        n in 1u64..80_000,
        t in 1u32..512,
    ) {
        let f = build_features(m, k, n, t);
        prop_assert_eq!(f.len(), FEATURE_COUNT);
        prop_assert!(f.iter().all(|v| v.is_finite() && *v >= 0.0));
        // Group-2 features shrink as the thread count grows.
        let f2 = build_features(m, k, n, t * 2);
        for i in 9..FEATURE_COUNT {
            prop_assert!(f2[i] <= f[i] + 1e-12);
        }
        // Group-1 features ignore the thread count (except the count itself).
        for i in 0..3 {
            prop_assert_eq!(f2[i], f[i]);
        }
    }

    #[test]
    fn scaler_roundtrips_arbitrary_matrices(
        rows in 2usize..30,
        cols in 1usize..6,
        seed in 0u64..500,
    ) {
        let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let data: Vec<f64> = (0..rows * cols)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f64 / 1e8) - 40.0
            })
            .collect();
        let x = Matrix::from_vec(rows, cols, data);
        let scaler = StandardScaler::fit(&x).unwrap();
        let t = scaler.transform(&x).unwrap();
        let back = scaler.inverse_transform(&t).unwrap();
        for (a, b) in back.as_slice().iter().zip(x.as_slice()) {
            prop_assert!((a - b).abs() < 1e-8 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn stratified_split_partitions_any_labels(
        n in 20usize..200,
        frac in 0.1f64..0.5,
        seed in 0u64..100,
    ) {
        let y: Vec<f64> = (0..n).map(|i| ((i * 37) % 101) as f64).collect();
        let (train, test) = stratified_split(&y, frac, 10, seed);
        prop_assert_eq!(train.len() + test.len(), n);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), n, "split lost or duplicated indices");
        let expect = (n as f64 * frac) as i64;
        prop_assert!((test.len() as i64 - expect).abs() <= n as i64 / 5 + 5);
    }

    #[test]
    fn strata_are_label_ordered(n in 10usize..100, bins in 2usize..8) {
        let y: Vec<f64> = (0..n).map(|i| (i as f64).sin() * 100.0).collect();
        let strata = label_strata(&y, bins);
        // A sample in a higher stratum never has a smaller label than one
        // in a lower stratum.
        for i in 0..n {
            for j in 0..n {
                if strata[i] < strata[j] {
                    prop_assert!(y[i] <= y[j] + 1e-12);
                }
            }
        }
    }
}

proptest! {
    // Model fitting is slower; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn tree_models_predict_within_label_hull(seed in 0u64..100) {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut rand = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 1000) as f64 / 100.0 - 5.0
        };
        let rows: Vec<Vec<f64>> = (0..80).map(|_| vec![rand(), rand()]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * r[1]).collect();
        let x = Matrix::from_rows(&rows);
        let (lo, hi) = y.iter().fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
        for kind in [ModelKind::DecisionTree, ModelKind::RandomForest, ModelKind::Knn] {
            let mut model = AnyModel::default_for(kind);
            model.fit(&x, &y).unwrap();
            for probe in x.row_iter().take(20) {
                let p = model.predict_row(probe);
                prop_assert!(
                    p >= lo - 1e-9 && p <= hi + 1e-9,
                    "{kind:?} predicted {p} outside [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn correlation_pruner_always_keeps_at_least_one_feature(seed in 0u64..50) {
        let mut s = seed.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
        let mut rand = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 1000) as f64
        };
        let base: Vec<f64> = (0..40).map(|_| rand()).collect();
        // Four highly correlated copies of one signal.
        let rows: Vec<Vec<f64>> = base
            .iter()
            .map(|&v| vec![v, v * 2.0, v + 1.0, -v])
            .collect();
        let x = Matrix::from_rows(&rows);
        let pruner = CorrelationPruner::fit(&x, 0.8).unwrap();
        prop_assert!(!pruner.kept.is_empty());
        prop_assert!(pruner.kept.len() <= 4);
        let t = pruner.transform(&x).unwrap();
        prop_assert_eq!(t.cols(), pruner.kept.len());
    }

    #[test]
    fn yeo_johnson_fit_handles_arbitrary_columns(seed in 0u64..50) {
        let mut s = seed.wrapping_mul(0xD134_2543_DE82_EF95) | 1;
        let mut rand = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 2_000_000) as f64 / 1000.0) - 1000.0
        };
        let rows: Vec<Vec<f64>> = (0..60).map(|_| vec![rand(), rand().abs(), -rand().abs()]).collect();
        let x = Matrix::from_rows(&rows);
        let yj = YeoJohnson::fit(&x).unwrap();
        let t = yj.transform(&x).unwrap();
        prop_assert!(t.all_finite());
        prop_assert!(yj.lambdas.iter().all(|l| (-5.0..=5.0).contains(l)));
    }
}
