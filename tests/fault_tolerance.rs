//! Chaos and deadline tests for the fault-tolerance layer: injected
//! kernel panics must never escape to a client, the pool must respawn
//! dead workers and keep its packing arenas allocation-steady, expired
//! deadlines must shed queued work with an honest `Timeout`, and a
//! corrupted artifact must be refused at load.
//!
//! Fault state (`adsala_gemm::fault::set_plan`) is process-global, so
//! every test that installs a plan serializes on one mutex and clears
//! the plan through a drop guard — a failing assertion cannot leak
//! faults into a neighbouring test.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use adsala::bundle::quick_test_bundle as quick_bundle;
use adsala::prelude::*;
use adsala_gemm::fault::{self, FaultPlan};
use adsala_gemm::gemm::{gemm_with_stats, GemmCall};
use adsala_gemm::isa::KernelIsa;
use adsala_gemm::plan::Algorithm;
use adsala_gemm::workspace::thread_arena_stats;

fn fault_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Clears the global fault plan when dropped, even on a panicking
/// assertion, so the suite's other tests start fault-free.
struct PlanGuard;

impl Drop for PlanGuard {
    fn drop(&mut self) {
        fault::set_plan(None);
    }
}

/// Serialize on the global fault state and install `spec`. Returns the
/// lock (held for the test's duration), the cleanup guard, and the
/// installed plan for reading its injection counters.
fn install(spec: &str) -> (MutexGuard<'static, ()>, PlanGuard, Arc<FaultPlan>) {
    let lock = fault_lock().lock().unwrap_or_else(|e| e.into_inner());
    let plan = fault::set_plan(Some(FaultPlan::parse(spec).expect("valid fault spec")))
        .expect("installed");
    (lock, PlanGuard, plan)
}

fn service(workers: usize) -> AdsalaService {
    AdsalaService::with_config(
        quick_bundle().into_shared(),
        ServiceConfig { pool_workers: workers, ..ServiceConfig::default() },
    )
}

fn fill(n: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 2000) as f32 - 1000.0) / 350.0
        })
        .collect()
}

/// Serial single-threaded reference for `C = A·B` (β = 0).
fn serial_reference(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    gemm_with_stats(&GemmCall::new(m, n, k, 1), 1.0, a, k, b, n, 0.0, &mut c, n);
    c
}

fn assert_close(c: &[f32], c_ref: &[f32], what: &str) {
    for (i, (x, y)) in c.iter().zip(c_ref).enumerate() {
        assert!((x - y).abs() <= 1e-3 * (1.0 + y.abs()), "{what}: c[{i}] = {x} vs reference {y}");
    }
}

/// The acceptance-criteria chaos test: one fault plan injects kernel
/// panics into pool workers while 8 clients flood the service with
/// mixed shapes. Every client must get a numerically correct result
/// (a degraded retry is allowed), the panics must be counted and the
/// dead workers respawned, and once the plan is cleared a large op must
/// run undegraded on the full pool.
#[test]
fn chaos_flood_isolates_injected_panics_from_every_client() {
    let (_lock, guard, plan) = install("panic:where=worker:count=3");
    let svc = service(4);

    // Mixed shapes: the big symmetric ones decide multi-threaded plans
    // (whose jobs run on pool workers — the fault's context filter), the
    // small ones run serial and can never be hit.
    let shapes: [(usize, usize, usize); 4] =
        [(256, 256, 256), (384, 384, 384), (48, 48, 64), (64, 64, 64)];
    let clients = 8usize;
    let reps = 3usize;

    std::thread::scope(|scope| {
        for client in 0..clients {
            let svc = &svc;
            scope.spawn(move || {
                for rep in 0..reps {
                    let (m, n, k) = shapes[(client + rep) % shapes.len()];
                    let a = fill(m * k, (client * 100 + rep) as u64 + 1);
                    let b = fill(k * n, (client * 100 + rep) as u64 + 51);
                    let c_ref = serial_reference(m, n, k, &a, &b);
                    let mut c = vec![0.0f32; m * n];
                    let mut req: OpRequest<'_, f32> =
                        GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
                    svc.run(&mut req).expect("no client may observe a panic");
                    assert_close(&c, &c_ref, "chaos flood result");
                }
            });
        }
    });

    assert!(plan.injected_panics() >= 1, "fault plan never fired during the flood");
    let stats = svc.stats();
    assert!(stats.panics_recovered >= 1, "panic not counted: {stats:?}");
    assert!(stats.degraded_retries >= 1, "no degraded retry recorded: {stats:?}");
    assert_eq!(stats.execution_failures, 0, "a request was dropped: {stats:?}");
    assert!(stats.pool.workers_respawned >= 1, "dead worker not respawned: {stats:?}");

    // Faults off: a subsequent large op must run undegraded and
    // multi-threaded on the fully healed pool.
    drop(guard);
    let (m, n, k) = (256usize, 256usize, 256usize);
    let a = fill(m * k, 901);
    let b = fill(k * n, 902);
    let c_ref = serial_reference(m, n, k, &a, &b);
    let mut c = vec![0.0f32; m * n];
    let mut req: OpRequest<'_, f32> =
        GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
    let (_, post) = svc.run_with(&mut req, RunOptions::with_host_cap(4)).expect("healed pool run");
    assert!(!post.plan_degraded, "post-recovery op should not be degraded");
    assert!(post.exec.threads_used >= 2, "healed pool did not execute in parallel: {post:?}");
    assert_close(&c, &c_ref, "post-recovery result");
    assert_eq!(svc.pool_stats().workers, 4, "pool lost a worker permanently");
}

/// After a panic is isolated and the worker respawned, the pool must
/// serve the *entire* plan grid again: pinned plans at every width up
/// to the worker count execute with exactly that many threads, and no
/// gang capacity is leaked.
#[test]
fn pool_serves_full_plan_grid_after_recovery() {
    let (_lock, guard, plan) = install("panic:where=worker:count=1");
    let svc = service(4);

    let (m, n, k) = (256usize, 256usize, 256usize);
    let a = fill(m * k, 11);
    let b = fill(k * n, 12);
    let c_ref = serial_reference(m, n, k, &a, &b);
    let mut c = vec![0.0f32; m * n];
    let mut req: OpRequest<'_, f32> =
        GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
    svc.run(&mut req).expect("panicked op must recover");
    assert_eq!(plan.injected_panics(), 1);
    assert_close(&c, &c_ref, "recovered result");

    drop(guard);
    for threads in [1u32, 2, 4] {
        let mut c = vec![0.0f32; m * n];
        let mut req: OpRequest<'_, f32> =
            GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
        let stats = svc
            .run_pinned(&mut req, &ExecutionPlan::with_threads(threads))
            .expect("pinned run on healed pool");
        assert_eq!(stats.exec.threads_used, threads as usize, "grid width {threads} unavailable");
        assert_close(&c, &c_ref, "pinned post-recovery result");
    }
    let pool = svc.pool_stats();
    assert_eq!(pool.workers, 4);
    assert_eq!(pool.gang_available, 4, "gang capacity leaked across the panic: {pool:?}");
    assert_eq!(pool.workers_respawned, 1);
}

/// Satellite 1: a poisoned batch must not leak packing-arena state. The
/// respawned worker re-registers its predecessor's workspace slot and
/// the shared-B region is reclaimed on batch teardown, so a warmed
/// service reaches the same zero-allocation steady state after a panic
/// as before it.
#[test]
fn packing_arenas_stay_allocation_steady_after_a_panic() {
    let _lock = fault_lock().lock().unwrap_or_else(|e| e.into_inner());
    let _guard = PlanGuard;
    fault::set_plan(None);
    let svc = service(4);

    let (m, n, k) = (256usize, 256usize, 256usize);
    let a = fill(m * k, 21);
    let b = fill(k * n, 22);
    // The degraded retry runs serial/scalar/independent on *this* thread,
    // so warm the caller's thread-local arena with the same shape the
    // retry will pack, and the worker slots with pooled runs.
    let degraded = ExecutionPlan::with_threads(1)
        .with_isa(KernelIsa::Scalar)
        .with_packing(PackingStrategy::Independent)
        .with_algorithm(Algorithm::Blocked);
    for round in 0..4 {
        let mut c = vec![0.0f32; m * n];
        let mut req: OpRequest<'_, f32> =
            GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
        if round == 0 {
            svc.run_pinned(&mut req, &degraded).expect("caller-arena warm-up");
        } else {
            svc.run(&mut req).expect("worker-arena warm-up");
        }
    }
    let pool_before = svc.workspace_stats();
    let local_before = thread_arena_stats();

    fault::set_plan(Some(FaultPlan::parse("panic:where=worker:count=1").unwrap()));
    let mut c = vec![0.0f32; m * n];
    let mut req: OpRequest<'_, f32> =
        GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
    svc.run(&mut req).expect("panicked op must recover");
    assert_eq!(svc.stats().panics_recovered, 1);
    fault::set_plan(None);

    for round in 0..3 {
        let mut c = vec![0.0f32; m * n];
        let mut req: OpRequest<'_, f32> =
            GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
        let _ = round;
        svc.run(&mut req).expect("post-recovery run");
    }
    let pool_after = svc.workspace_stats();
    let local_after = thread_arena_stats();
    assert_eq!(
        pool_after.allocations, pool_before.allocations,
        "panic leaked pool arena state: {pool_before:?} -> {pool_after:?}"
    );
    assert_eq!(
        local_after.allocations, local_before.allocations,
        "degraded retry leaked caller arena state: {local_before:?} -> {local_after:?}"
    );
    assert!(pool_after.bytes_reused > pool_before.bytes_reused, "steady state never reused");
}

/// `submit_within` under a stalled wave: an occupier holds the whole
/// thread budget behind injected worker stalls, so a small op's
/// deadline expires while it is still queued. It must come back as a
/// clean `Timeout` with its output untouched and be counted as shed —
/// and the occupier itself must still complete.
#[test]
fn submit_within_times_out_under_a_stalled_wave() {
    let (_lock, _guard, plan) = install("stall:ms=300:count=4");
    let svc = Arc::new(service(4));
    let sched = ServiceScheduler::with_config(
        Arc::clone(&svc),
        SchedulerConfig { thread_budget: 4, ..SchedulerConfig::default() },
    );

    std::thread::scope(|scope| {
        let sched = &sched;
        let occupier = scope.spawn(move || {
            let (m, n, k) = (256usize, 256usize, 256usize);
            let a = fill(m * k, 31);
            let b = fill(k * n, 32);
            let mut c = vec![0.0f32; m * n];
            let mut req: OpRequest<'_, f32> =
                GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
            sched
                .submit_with(&mut req, RunOptions::with_host_cap(4))
                .expect("stalled occupier must still complete")
        });

        // Let the occupier get admitted and hit the worker stalls, then
        // ask for a slice of budget it cannot get within 50 ms.
        std::thread::sleep(Duration::from_millis(100));
        let (m, n, k) = (48usize, 48usize, 64usize);
        let a = fill(m * k, 33);
        let b = fill(k * n, 34);
        let mut c = vec![7.0f32; m * n];
        let mut req: OpRequest<'_, f32> =
            GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
        match sched.submit_within(&mut req, Duration::from_millis(50)) {
            Err(AdsalaError::Timeout(msg)) => {
                assert!(msg.contains("shed"), "unexpected timeout message: {msg}")
            }
            other => panic!("expected Timeout for the queued op, got {other:?}"),
        }
        assert!(c.iter().all(|&x| x == 7.0), "shed op touched its output");

        let run = occupier.join().expect("occupier thread");
        assert!(run.stats.exec.threads_used >= 2, "occupier never occupied the workers");
    });

    assert!(plan.injected_stalls() >= 1, "no stall was injected");
    let stats = sched.stats();
    assert!(stats.shed_expired >= 1, "shed op not counted: {stats:?}");
    assert_eq!(stats.completed, 1, "occupier not completed: {stats:?}");
}

/// A queued op whose deadline has already passed is shed by the wave
/// planner's sweep before any planning happens — deterministically, no
/// faults required — and the shed is counted, not silent.
#[test]
fn expired_deadline_is_shed_by_the_wave_planner() {
    let svc = Arc::new(service(2));
    let sched = ServiceScheduler::with_config(svc, SchedulerConfig::default());
    let (m, n, k) = (64usize, 64usize, 64usize);
    let a = fill(m * k, 41);
    let b = fill(k * n, 42);
    let mut c = vec![7.0f32; m * n];
    let mut req: OpRequest<'_, f32> =
        GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
    let opts = RunOptions::default().with_deadline(Instant::now() - Duration::from_millis(1));
    match sched.submit_with(&mut req, opts) {
        Err(AdsalaError::Timeout(_)) => {}
        other => panic!("expected Timeout for the expired op, got {other:?}"),
    }
    assert!(c.iter().all(|&x| x == 7.0), "shed op touched its output");
    let stats = sched.stats();
    assert_eq!(stats.shed_expired, 1);
    assert_eq!(stats.completed, 0);
    assert_eq!(stats.queue_depth, 0, "shed ticket still queued: {stats:?}");
}

/// `SchedulerConfig::admission_timeout` bounds the wait at a full
/// admission queue: while a stalled occupier pins the budget and a
/// second op fills the queue, a plain `submit` must give up after the
/// configured timeout instead of blocking forever.
#[test]
fn admission_gate_honors_the_configured_timeout() {
    let (_lock, _guard, _plan) = install("stall:ms=300:count=8");
    let svc = Arc::new(service(4));
    let sched = ServiceScheduler::with_config(
        Arc::clone(&svc),
        SchedulerConfig {
            thread_budget: 4,
            max_queue: 1,
            admission_timeout: Some(Duration::from_millis(50)),
            ..SchedulerConfig::default()
        },
    );

    std::thread::scope(|scope| {
        let sched = &sched;
        let occupier = scope.spawn(move || {
            let (m, n, k) = (256usize, 256usize, 256usize);
            let a = fill(m * k, 51);
            let b = fill(k * n, 52);
            let mut c = vec![0.0f32; m * n];
            let mut req: OpRequest<'_, f32> =
                GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
            sched.submit_with(&mut req, RunOptions::with_host_cap(4)).expect("occupier")
        });
        std::thread::sleep(Duration::from_millis(60));
        let filler = scope.spawn(move || {
            let (m, n, k) = (96usize, 96usize, 96usize);
            let a = fill(m * k, 53);
            let b = fill(k * n, 54);
            let mut c = vec![0.0f32; m * n];
            let mut req: OpRequest<'_, f32> =
                GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
            sched.submit(&mut req).expect("queued filler must eventually run")
        });
        std::thread::sleep(Duration::from_millis(60));

        // Queue is full (the filler) and the budget is pinned (the
        // occupier): the gate must refuse after ~50 ms, long before the
        // 300 ms stalls release anything.
        let (m, n, k) = (64usize, 64usize, 64usize);
        let a = fill(m * k, 55);
        let b = fill(k * n, 56);
        let mut c = vec![0.0f32; m * n];
        let mut req: OpRequest<'_, f32> =
            GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
        match sched.submit(&mut req) {
            Err(AdsalaError::Timeout(msg)) => {
                assert!(msg.contains("admission"), "unexpected timeout message: {msg}")
            }
            other => panic!("expected Timeout at the admission gate, got {other:?}"),
        }

        occupier.join().expect("occupier thread");
        filler.join().expect("filler thread");
    });

    let stats = sched.stats();
    assert_eq!(stats.admission_timeouts, 1, "gate timeout not counted: {stats:?}");
    assert_eq!(stats.completed, 2, "occupier/filler lost: {stats:?}");
}

/// Service-level deadline: a call whose deadline has already passed is
/// refused with `Timeout` before any execution, leaving the output
/// untouched and counting a deadline miss.
#[test]
fn service_refuses_a_call_whose_deadline_has_passed() {
    let svc = service(2);
    let (m, n, k) = (64usize, 64usize, 64usize);
    let a = fill(m * k, 61);
    let b = fill(k * n, 62);
    let mut c = vec![7.0f32; m * n];
    let mut req: OpRequest<'_, f32> =
        GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
    let opts = RunOptions::default().with_deadline(Instant::now() - Duration::from_millis(1));
    match svc.run_with(&mut req, opts) {
        Err(AdsalaError::Timeout(_)) => {}
        other => panic!("expected Timeout, got {other:?}"),
    }
    assert!(c.iter().all(|&x| x == 7.0), "refused call touched its output");
    let stats = svc.stats();
    assert_eq!(stats.deadline_misses, 1);
    assert_eq!(stats.panics_recovered, 0);
}

/// Satellite 2 end to end: flipping one model coefficient to a
/// non-finite value must make `Artifact::from_json` refuse the whole
/// document instead of serving decisions from a silently-NaN model.
#[test]
fn corrupted_artifact_is_rejected_at_load() {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/artifact_v3.json");
    let pristine = std::fs::read_to_string(&path).expect("read fixture");
    let corrupt = FaultPlan::corrupt_artifact_json(&pristine);
    assert_ne!(corrupt, pristine, "corruption helper found no coefficient to flip");

    match Artifact::from_json(&corrupt) {
        Err(AdsalaError::Artifact(msg)) => {
            assert!(msg.contains("non-finite"), "unexpected rejection: {msg}")
        }
        other => panic!("corrupted artifact must be rejected, got {other:?}"),
    }
    Artifact::from_json(&pristine).expect("pristine fixture still loads");
}
