//! Algorithm-axis equivalence suite: every algorithm the widened plan
//! grid can emit must compute the same product as the blocked driver.
//!
//! * Strassen reassociates additions, so Strassen vs blocked equality is
//!   to a *relative* tolerance (1e-9 for f64, 1e-3 for f32 — one extra
//!   digit of slack per recursion level over the drivers' own error),
//!   across transpose combinations and skewed shapes; ineligible shapes
//!   must degrade to the bitwise-identical blocked call.
//! * Z-order packing is pure data movement: a pack→unpack round trip is
//!   bitwise, and the Z-order driver matches the serial blocked driver
//!   bitwise (same kernels, same per-tile update order).
//! * Plan-pinned algorithm execution flows through the serving stack:
//!   `AdsalaService::run_pinned` honours an eligible Strassen plan, and
//!   the co-scheduler reports executed algorithms into the service mix.
//! * The committed v3 artefact fixture (uniform block scales, no
//!   algorithm axis) must migrate to schema v4 and decide bit-for-bit
//!   like the build that wrote it.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use adsala_repro::adsala::prelude::*;
use adsala_repro::adsala_gemm::gemm::{gemm_with_stats, gemm_with_stats_pooled, GemmCall};
use adsala_repro::adsala_gemm::naive::naive_gemm;
use adsala_repro::adsala_gemm::pack::{pack_zorder, unpack_zorder, zorder_buffer_len, MatView};
use adsala_repro::adsala_gemm::plan::Algorithm;
use adsala_repro::adsala_gemm::pool::ThreadPool;
use adsala_repro::adsala_gemm::Transpose;

/// `(m, n, k, trans_a, trans_b)`: Strassen-eligible shapes (even dims,
/// min ≥ 2·cutoff for cutoff 64) — square, skewed both ways — across
/// every transpose combination.
const STRASSEN_CASES: &[(usize, usize, usize, bool, bool)] = &[
    (256, 256, 256, false, false),
    (256, 128, 192, true, false),
    (128, 384, 256, false, true),
    (192, 192, 128, true, true),
    (512, 128, 128, false, false),
];

fn fill<T: From<f32>>(n: usize, seed: u64) -> Vec<T> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            T::from(((s % 1000) as f32 - 500.0) / 100.0)
        })
        .collect()
}

fn transposes(ta: bool, tb: bool) -> (Transpose, Transpose) {
    let t = |flag| if flag { Transpose::Yes } else { Transpose::No };
    (t(ta), t(tb))
}

/// Stored-operand sizes and leading strides for a transposed call.
fn strides(
    m: usize,
    n: usize,
    k: usize,
    ta: Transpose,
    tb: Transpose,
) -> (usize, usize, usize, usize) {
    let (ar, ac) = if ta.is_transposed() { (k, m) } else { (m, k) };
    let (br, bc) = if tb.is_transposed() { (n, k) } else { (k, n) };
    (ar * ac, br * bc, ac.max(1), bc.max(1))
}

macro_rules! strassen_matches_blocked {
    ($name:ident, $t:ty, $tol:expr) => {
        #[test]
        fn $name() {
            let pool = ThreadPool::new(3);
            for &(m, n, k, ta, tb) in STRASSEN_CASES {
                let (ta, tb) = transposes(ta, tb);
                let (a_len, b_len, lda, ldb) = strides(m, n, k, ta, tb);
                let a: Vec<$t> = fill(a_len, m as u64);
                let b: Vec<$t> = fill(b_len, n as u64 + 1);
                let mut c_str: Vec<$t> = fill(m * n, k as u64 + 2);
                let mut c_blk = c_str.clone();
                let alpha = <$t>::from(1.25f32);
                let beta = <$t>::from(-0.5f32);

                let base = GemmCall { trans_a: ta, trans_b: tb, ..GemmCall::new(m, n, k, 3) };
                let call =
                    base.with_plan(base.plan.with_algorithm(Algorithm::Strassen { cutoff: 64 }));
                let s = gemm_with_stats_pooled(
                    &pool, &call, alpha, &a, lda, &b, ldb, beta, &mut c_str, n,
                );
                assert_eq!(
                    s.algorithm,
                    Algorithm::Strassen { cutoff: 64 },
                    "{m}x{n}x{k} ta={ta:?} tb={tb:?} must be Strassen-eligible"
                );
                gemm_with_stats_pooled(&pool, &base, alpha, &a, lda, &b, ldb, beta, &mut c_blk, n);
                for (i, (x, y)) in c_str.iter().zip(&c_blk).enumerate() {
                    let (x, y) = (f64::from(*x), f64::from(*y));
                    assert!(
                        (x - y).abs() <= $tol * (1.0 + y.abs()),
                        "Strassen drifted at {i} for {m}x{n}x{k} ta={ta:?} tb={tb:?}: {x} vs {y}"
                    );
                }
            }
        }
    };
}

strassen_matches_blocked!(strassen_matches_blocked_f64, f64, 1e-9);
strassen_matches_blocked!(strassen_matches_blocked_f32, f32, 1e-3);

/// Shapes the dispatcher must refuse (odd dims, or too small for the
/// cutoff) run the blocked driver bit-for-bit and report the downgrade.
#[test]
fn ineligible_strassen_is_bitwise_the_blocked_call() {
    for &(m, n, k) in &[(255usize, 256usize, 256usize), (64, 64, 64), (2, 507, 2)] {
        let a: Vec<f64> = fill(m * k, 31);
        let b: Vec<f64> = fill(k * n, 32);
        let mut c_str: Vec<f64> = fill(m * n, 33);
        let mut c_blk = c_str.clone();
        let base = GemmCall::new(m, n, k, 2);
        let call = base.with_plan(base.plan.with_algorithm(Algorithm::Strassen { cutoff: 64 }));
        let s = gemm_with_stats(&call, 1.0, &a, k, &b, n, 0.5, &mut c_str, n);
        assert_eq!(s.algorithm, Algorithm::Blocked, "{m}x{n}x{k} must degrade");
        gemm_with_stats(&base, 1.0, &a, k, &b, n, 0.5, &mut c_blk, n);
        assert_eq!(c_str, c_blk, "the degraded call must be exactly the blocked call");
    }
}

/// Z-order pack → unpack reproduces the live region bitwise, including
/// ragged (non-multiple-of-tile) edges and transposed views.
#[test]
fn zorder_pack_unpack_round_trips_bitwise() {
    for &(rows, cols, tile) in
        &[(64usize, 64usize, 16usize), (37, 53, 8), (5, 129, 16), (96, 1, 32)]
    {
        let src: Vec<f64> = fill(rows * cols, (rows * cols) as u64);
        for transposed in [false, true] {
            let view = MatView::row_major(&src, rows, cols, cols);
            let view = if transposed { view.t() } else { view };
            let (r, c) = (view.rows(), view.cols());
            let mut buf = vec![f64::NAN; zorder_buffer_len(r, c, tile)];
            pack_zorder(&view, tile, &mut buf);
            let mut out = vec![0.0f64; r * c];
            unpack_zorder(&buf, r, c, tile, &mut out, c);
            for i in 0..r {
                for j in 0..c {
                    assert!(
                        out[i * c + j].to_bits() == view.at(i, j).to_bits(),
                        "round trip drifted at ({i},{j}) for {rows}x{cols} t={tile} \
                         transposed={transposed}"
                    );
                }
            }
        }
    }
}

/// The Z-order driver differs from the serial blocked driver only in
/// macro-block traversal order, so results are bitwise identical.
#[test]
fn zorder_plans_match_serial_blocked_bitwise() {
    let pool = ThreadPool::new(2);
    for &(m, n, k) in &[(200usize, 144usize, 96usize), (97, 33, 131)] {
        let a: Vec<f32> = fill(m * k, 61);
        let b: Vec<f32> = fill(k * n, 62);
        let mut c_z: Vec<f32> = fill(m * n, 63);
        let mut c_blk = c_z.clone();
        let serial = GemmCall::new(m, n, k, 1);
        let zcall = serial.with_plan(serial.plan.with_algorithm(Algorithm::ZOrder));
        let s = gemm_with_stats_pooled(&pool, &zcall, 2.0, &a, k, &b, n, -1.0, &mut c_z, n);
        assert_eq!(s.algorithm, Algorithm::ZOrder);
        gemm_with_stats(&serial, 2.0, &a, k, &b, n, -1.0, &mut c_blk, n);
        assert_eq!(c_z, c_blk, "zorder drifted from serial blocked at {m}x{n}x{k}");
    }
}

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn fixture_service() -> AdsalaService {
    let art = Artifact::load(&fixture_path("artifact_v3.json")).expect("fixture must load");
    AdsalaService::with_config(
        art.into_bundle().into_shared(),
        ServiceConfig { pool_workers: 2, ..ServiceConfig::default() },
    )
}

/// An eligible Strassen plan pinned through the service executes the
/// Strassen recursion, computes the right product, and lands in the
/// service's algorithm-mix telemetry.
#[test]
fn pinned_strassen_runs_through_the_service() {
    let svc = fixture_service();
    let (m, n, k) = (256usize, 256usize, 256usize);
    let a: Vec<f64> = fill(m * k, 71);
    let b: Vec<f64> = fill(k * n, 72);
    let mut c = vec![0.0f64; m * n];
    let plan = ExecutionPlan {
        algorithm: Algorithm::Strassen { cutoff: 64 },
        ..ExecutionPlan::with_threads(2)
    };
    let mut req: OpRequest<'_, f64> =
        GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
    let stats = svc.run_pinned(&mut req, &plan).unwrap();
    assert_eq!(stats.exec.algorithm, Algorithm::Strassen { cutoff: 64 });
    assert!(!stats.plan_degraded);
    assert_eq!(svc.stats().algorithms.strassen, 1);

    let mut c_ref = vec![0.0f64; m * n];
    naive_gemm(Transpose::No, Transpose::No, m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c_ref, n);
    for (i, (x, y)) in c.iter().zip(&c_ref).enumerate() {
        assert!((x - y).abs() <= 1e-9 * (1.0 + y.abs()), "wrong at {i}: {x} vs {y}");
    }
}

/// Ops routed through the co-scheduler report their executed algorithm
/// into the wrapped service's mix (the scheduler executes on the pool
/// directly, so it must feed the telemetry itself).
#[test]
fn scheduler_reports_executed_algorithms_into_the_service_mix() {
    let svc = Arc::new(fixture_service());
    let sched = ServiceScheduler::new(Arc::clone(&svc));
    let (m, n, k) = (96usize, 96usize, 96usize);
    let a: Vec<f32> = fill(m * k, 81);
    let b: Vec<f32> = fill(k * n, 82);
    let mut c = vec![0.0f32; m * n];
    let mut req: OpRequest<'_, f32> =
        GemmArgs::untransposed(m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n).into();
    let run = sched.submit(&mut req).unwrap();
    let mix = svc.stats().algorithms;
    assert_eq!(
        mix.blocked + mix.strassen + mix.zorder,
        1,
        "exactly one executed op must be tallied, got {mix:?}"
    );
    // The tallied bucket is the algorithm the stats report.
    let expected = match run.stats.exec.algorithm {
        Algorithm::Blocked => mix.blocked,
        Algorithm::Strassen { .. } => mix.strassen,
        Algorithm::ZOrder => mix.zorder,
    };
    assert_eq!(expected, 1);
}

/// Decisions recorded from the v3 (uniform-block-scale) build for the
/// committed fixture: `((m, k, n), threads, predicted_runtime_s bits)`.
/// The v3→v4 migration widens the grid without changing the candidate
/// set, iteration order, or feature rows, so the served decisions must
/// stay bit-identical.
const V3_PINNED_DECISIONS: &[((u64, u64, u64), u32, u64)] = &[
    ((64, 64, 64), 1, 0x3f01ca39686174a6),
    ((1000, 500, 1000), 48, 0x3f4f00f97234b037),
    ((64, 4096, 64), 1, 0x3f5a01103d350828),
    ((128, 512, 128), 1, 0x3f205ca1222e616b),
    ((2000, 64, 2000), 48, 0x3f41a4193cad7417),
    ((48, 48, 48), 1, 0x3f046d5363ad464b),
    ((3000, 3000, 3000), 48, 0x3f8c6387971e10d4),
    ((1, 74000, 1), 1, 0x3f84a9d848a76302),
];

#[test]
fn v3_fixture_loads_as_v4_with_a_widened_blocked_only_grid() {
    use adsala_repro::adsala_gemm::plan::{BlockScale, FEATURE_REV_LEGACY};
    let art = Artifact::load(&fixture_path("artifact_v3.json")).expect("fixture must load");
    assert_eq!(art.version, Artifact::VERSION);
    assert_eq!(art.machine, "gadi-sim-v3");
    assert_eq!(
        art.grid.blockings,
        vec![BlockScale::uniform(100), BlockScale::uniform(50), BlockScale::uniform(200)],
        "v3 block percents widen to uniform per-axis triples"
    );
    assert_eq!(art.grid.algorithms, vec![Algorithm::Blocked]);
    assert_eq!(art.grid.feature_rev, FEATURE_REV_LEGACY);
    assert!(art.grid.plan_features);
    assert!(art.grid.points().all(|p| p.algorithm == Algorithm::Blocked));
}

#[test]
fn v3_fixture_decides_bitwise_identically_after_migration() {
    let mut runtime = Artifact::load(&fixture_path("artifact_v3.json"))
        .expect("fixture must load")
        .into_runtime();
    for &((m, k, n), threads, runtime_bits) in V3_PINNED_DECISIONS {
        let d = runtime.select_threads(m, k, n);
        assert_eq!(d.threads(), threads, "thread decision drifted for {m}x{k}x{n}");
        assert_eq!(
            d.plan.algorithm,
            Algorithm::Blocked,
            "migrated v3 artefacts must never emit a non-blocked algorithm"
        );
        assert_eq!(
            d.predicted_runtime_s.to_bits(),
            runtime_bits,
            "predicted runtime drifted for {m}x{k}x{n}: {:e}",
            d.predicted_runtime_s
        );
    }
}

#[test]
fn v3_fixture_serves_identically_through_the_concurrent_service() {
    let svc = fixture_service();
    for &((m, k, n), threads, runtime_bits) in V3_PINNED_DECISIONS {
        let d = svc.select_threads(m, k, n);
        assert_eq!(d.threads(), threads);
        assert_eq!(d.predicted_runtime_s.to_bits(), runtime_bits);
    }
}

/// Rewriting the migrated fixture emits a v4 document whose decisions
/// round-trip bit-exactly.
#[test]
fn migrated_v3_fixture_rewrites_as_v4_and_round_trips() {
    let art = Artifact::load(&fixture_path("artifact_v3.json")).expect("fixture must load");
    let json = art.to_json().expect("serialise");
    assert!(json.contains("\"version\":4"), "rewritten artefacts must be v4");
    assert!(json.contains("\"blockings\""), "v4 carries per-axis block scales");
    assert!(json.contains("\"algorithms\""), "v4 carries the algorithm axis");
    let back = Artifact::from_json(&json).expect("v4 round trip");
    let mut a = art.into_runtime();
    let mut b = back.into_runtime();
    for &((m, k, n), _, _) in V3_PINNED_DECISIONS {
        assert_eq!(a.select_threads(m, k, n), b.select_threads(m, k, n));
    }
}
