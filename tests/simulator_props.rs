//! Property-based invariants of the machine simulator: costs are finite,
//! positive, deterministic, and respond to shape/thread changes the way a
//! physical machine must.

use adsala_repro::adsala_machine::{Affinity, MachineModel, Placement};
use adsala_repro::adsala_sampling::GemmShape;
use proptest::prelude::*;

fn machines() -> [MachineModel; 2] {
    [MachineModel::setonix(), MachineModel::gadi()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn expected_cost_is_finite_positive_everywhere(
        m in 1u64..50_000,
        k in 1u64..50_000,
        n in 1u64..50_000,
        p in 1u32..300,
    ) {
        let shape = GemmShape::new(m, k, n);
        for model in machines() {
            let c = model.expected(shape, p);
            prop_assert!(c.total().is_finite(), "{shape:?} p={p}");
            prop_assert!(c.total() > 0.0);
            prop_assert!(c.kernel_s > 0.0 && c.copy_s > 0.0);
            prop_assert!(c.sync_s >= 0.0 && c.spawn_s >= 0.0);
        }
    }

    #[test]
    fn more_flops_never_run_faster_at_fixed_threads(
        m in 1u64..5_000,
        k in 1u64..5_000,
        n in 1u64..5_000,
        p in 1u32..97,
    ) {
        // Doubling k strictly increases work and every cost component
        // derived from it.
        let small = GemmShape::new(m, k, n);
        let big = GemmShape::new(m, k * 2, n);
        for model in machines() {
            prop_assert!(
                model.expected(big, p).total() > model.expected(small, p).total() * 0.999,
                "bigger problem ran faster: {small:?} vs {big:?} at p={p}"
            );
        }
    }

    #[test]
    fn measurements_are_deterministic_and_near_expected(
        m in 1u64..10_000,
        k in 1u64..10_000,
        n in 1u64..10_000,
        p in 1u32..257,
        rep in 0u32..20,
    ) {
        let shape = GemmShape::new(m, k, n);
        for model in machines() {
            let a = model.measure(shape, p, rep);
            let b = model.measure(shape, p, rep);
            prop_assert_eq!(a, b, "noise not deterministic");
            let expected = model.expected(shape, p).total();
            // Log-normal σ = 0.12 plus rare heavy-tail spikes (up to a
            // handful of multiples of the mean).
            prop_assert!(
                a > expected * 0.5 && a < expected * 30.0,
                "noise factor out of range: {} vs {}",
                a,
                expected
            );
        }
    }

    #[test]
    fn placement_invariants(p in 1u32..400) {
        for model in machines() {
            let topo = &model.topology;
            for affinity in [Affinity::CoreBased, Affinity::ThreadBased] {
                let pl = Placement::place(topo, p, affinity);
                prop_assert!(pl.threads >= 1 && pl.threads <= topo.total_threads());
                prop_assert!(pl.cores_used >= 1 && pl.cores_used <= topo.total_cores());
                prop_assert!(pl.sockets_used >= 1 && pl.sockets_used <= topo.sockets);
                prop_assert!(pl.l3_groups_used >= 1);
                prop_assert!(pl.numa_used >= 1);
                prop_assert!(pl.smt_occupancy >= 1.0 - 1e-12);
                prop_assert!(pl.smt_occupancy <= topo.smt as f64 + 1e-12);
                // Can't use more cores than threads.
                prop_assert!(pl.cores_used <= pl.threads);
            }
        }
    }

    #[test]
    fn single_thread_beats_max_threads_for_tiny_problems(
        d in 8u64..48,
    ) {
        let shape = GemmShape::new(d, d, d);
        for model in machines() {
            let serial = model.expected(shape, 1).total();
            let maxed = model.expected(shape, model.max_threads()).total();
            prop_assert!(
                serial < maxed,
                "{}: {d}^3 faster at max threads ({maxed}) than serial ({serial})",
                model.topology.name
            );
        }
    }

    #[test]
    fn optimal_threads_is_argmin(
        m in 16u64..2_000,
        k in 16u64..2_000,
        n in 16u64..2_000,
    ) {
        // Spot-check the argmin against a stride of candidates.
        let shape = GemmShape::new(m, k, n);
        let model = MachineModel::gadi();
        let opt = model.optimal_threads(shape);
        let best = model.expected(shape, opt).total();
        for p in (1..=96).step_by(7) {
            prop_assert!(
                best <= model.expected(shape, p).total() + 1e-15,
                "p={p} beats the reported optimum {opt}"
            );
        }
    }
}
