//! Property tests for the dispatch layer's operand validation: an
//! undersized or mis-strided `a`/`b`/`c`/`x`/`y` must come back as a
//! `ShapeError` from the public entry points — never a panic, never a
//! short read — and validation must agree exactly with executability.

use adsala_gemm::dispatch::{GemmArgs, GemvArgs, OpRequest, SyrkArgs};
use adsala_gemm::{ThreadPool, Transpose};
use proptest::prelude::*;

/// Buffer length for a row-major `rows×cols` operand with row stride `ld`,
/// shortened by `cut` elements (saturating at zero).
fn len_for(rows: usize, cols: usize, ld: usize, cut: usize) -> usize {
    let full = if rows > 0 && cols > 0 { (rows - 1) * ld + cols } else { 0 };
    full.saturating_sub(cut)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn undersized_gemm_errors_instead_of_panicking(
        m in 0usize..28,
        n in 0usize..28,
        k in 0usize..28,
        lda_extra in 0usize..3,
        ldb_extra in 0usize..3,
        ldc_extra in 0usize..3,
        a_cut in 0usize..48,
        b_cut in 0usize..48,
        c_cut in 0usize..48,
        transpose_a in prop::bool::ANY,
        threads in 1usize..5,
    ) {
        let trans_a = if transpose_a { Transpose::Yes } else { Transpose::No };
        let (ar, ac) = if transpose_a { (k, m) } else { (m, k) };
        let lda = ac.max(1) + lda_extra;
        let ldb = n.max(1) + ldb_extra;
        let ldc = n.max(1) + ldc_extra;
        let a = vec![1.0f32; len_for(ar, ac, lda, a_cut)];
        let b = vec![1.0f32; len_for(k, n, ldb, b_cut)];
        let mut c = vec![1.0f32; len_for(m, n, ldc, c_cut)];

        let pool = ThreadPool::new(2);
        let mut req: OpRequest<'_, f32> = GemmArgs {
            trans_a,
            trans_b: Transpose::No,
            m, n, k,
            alpha: 1.0,
            a: &a, lda,
            b: &b, ldb,
            beta: 0.5,
            c: &mut c, ldc,
        }.into();
        let valid = req.validate().is_ok();
        // `execute` must agree with `validate` and must never panic —
        // a panic here fails the test case outright.
        let result =
            req.execute(&pool, &adsala_gemm::plan::ExecutionPlan::with_threads(threads as u32));
        prop_assert_eq!(valid, result.is_ok(), "validate/execute disagree: {:?}", result.err());
    }

    #[test]
    fn undersized_syrk_errors_instead_of_panicking(
        m in 0usize..24,
        k in 0usize..24,
        lda_extra in 0usize..3,
        ldc_extra in 0usize..3,
        a_cut in 0usize..40,
        c_cut in 0usize..40,
        threads in 1usize..5,
    ) {
        let lda = k.max(1) + lda_extra;
        let ldc = m.max(1) + ldc_extra;
        let a = vec![1.0f64; len_for(m, k, lda, a_cut)];
        let mut c = vec![1.0f64; len_for(m, m, ldc, c_cut)];

        let pool = ThreadPool::new(2);
        let mut req: OpRequest<'_, f64> =
            SyrkArgs { m, k, alpha: 1.0, a: &a, lda, beta: 0.0, c: &mut c, ldc }.into();
        let valid = req.validate().is_ok();
        let result =
            req.execute(&pool, &adsala_gemm::plan::ExecutionPlan::with_threads(threads as u32));
        prop_assert_eq!(valid, result.is_ok(), "validate/execute disagree: {:?}", result.err());
    }

    #[test]
    fn undersized_gemv_errors_instead_of_panicking(
        m in 0usize..40,
        n in 0usize..40,
        lda_extra in 0usize..3,
        a_cut in 0usize..40,
        x_cut in 0usize..8,
        y_cut in 0usize..8,
        threads in 1usize..6,
    ) {
        let lda = n.max(1) + lda_extra;
        let a = vec![1.0f32; len_for(m, n, lda, a_cut)];
        let x = vec![1.0f32; n.saturating_sub(x_cut)];
        let mut y = vec![1.0f32; m.saturating_sub(y_cut)];

        let pool = ThreadPool::new(2);
        let mut req: OpRequest<'_, f32> =
            GemvArgs { m, n, alpha: 1.0, a: &a, lda, x: &x, beta: 0.25, y: &mut y }.into();
        let valid = req.validate().is_ok();
        let result =
            req.execute(&pool, &adsala_gemm::plan::ExecutionPlan::with_threads(threads as u32));
        prop_assert_eq!(valid, result.is_ok(), "validate/execute disagree: {:?}", result.err());
    }
}
