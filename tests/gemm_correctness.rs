//! Property-based correctness of the GEMM substrate: the blocked,
//! packed, multi-threaded implementation must agree with the naive
//! triple loop for arbitrary shapes, strides, scalars, transposes and
//! thread counts.

use adsala_repro::adsala_gemm::gemm::{gemm_with_stats, gemm_with_stats_pooled, GemmCall};
use adsala_repro::adsala_gemm::gemv::{gemv_with_stats, naive_gemv};
use adsala_repro::adsala_gemm::naive::naive_gemm;
use adsala_repro::adsala_gemm::pool::ThreadPool;
use adsala_repro::adsala_gemm::syrk::{naive_syrk, syrk_with_stats};
use adsala_repro::adsala_gemm::Transpose;
use proptest::prelude::*;

fn fill(n: usize, seed: u64) -> Vec<f64> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s % 1000) as f64 - 500.0) / 100.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blocked_gemm_matches_naive(
        m in 1usize..90,
        n in 1usize..90,
        k in 0usize..70,
        threads in 1usize..9,
        ta in prop::bool::ANY,
        tb in prop::bool::ANY,
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
        seed in 0u64..1000,
    ) {
        let ta = if ta { Transpose::Yes } else { Transpose::No };
        let tb = if tb { Transpose::Yes } else { Transpose::No };
        let (ar, ac) = if ta.is_transposed() { (k, m) } else { (m, k) };
        let (br, bc) = if tb.is_transposed() { (n, k) } else { (k, n) };
        let a = fill((ar * ac).max(1), seed);
        let b = fill((br * bc).max(1), seed + 1);
        let mut c = fill(m * n, seed + 2);
        let mut c_ref = c.clone();

        let call = GemmCall { trans_a: ta, trans_b: tb, ..GemmCall::new(m, n, k, threads) };
        gemm_with_stats(&call, alpha, &a, ac.max(1), &b, bc.max(1), beta, &mut c, n);
        naive_gemm(ta, tb, m, n, k, alpha, &a, ac.max(1), &b, bc.max(1), beta, &mut c_ref, n);

        for (i, (x, y)) in c.iter().zip(&c_ref).enumerate() {
            prop_assert!(
                (x - y).abs() <= 1e-9 * (1.0 + y.abs()),
                "mismatch at {i}: {x} vs {y} (m={m} n={n} k={k} t={threads})"
            );
        }
    }

    #[test]
    fn strided_c_padding_is_never_touched(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        pad in 1usize..8,
        threads in 1usize..5,
    ) {
        let a = fill(m * k, 7);
        let b = fill(k * n, 8);
        let ldc = n + pad;
        let mut c = vec![f64::NAN; m * ldc];
        // Initialise only the live view; padding stays NaN.
        for i in 0..m {
            for j in 0..n {
                c[i * ldc + j] = 0.0;
            }
        }
        let call = GemmCall::new(m, n, k, threads);
        gemm_with_stats(&call, 1.0, &a, k, &b, n, 0.0, &mut c, ldc);
        for i in 0..m {
            for j in 0..ldc {
                if j < n {
                    prop_assert!(c[i * ldc + j].is_finite(), "live cell ({i},{j}) is NaN");
                } else {
                    prop_assert!(c[i * ldc + j].is_nan(), "padding ({i},{j}) was written");
                }
            }
        }
    }

    #[test]
    fn thread_count_never_changes_the_result(
        m in 1usize..60,
        n in 1usize..60,
        k in 1usize..50,
    ) {
        let a = fill(m * k, 11);
        let b = fill(k * n, 12);
        let run = |threads: usize| {
            let mut c = vec![0.0f64; m * n];
            let call = GemmCall::new(m, n, k, threads);
            gemm_with_stats(&call, 1.0, &a, k, &b, n, 0.0, &mut c, n);
            c
        };
        let serial = run(1);
        for t in [2, 4, 8] {
            let par = run(t);
            for (x, y) in par.iter().zip(&serial) {
                // Per-tile accumulation order is identical, so results are
                // bit-equal regardless of the grid.
                prop_assert!((x - y).abs() <= 1e-9 * (1.0 + y.abs()));
            }
        }
    }

    #[test]
    fn stats_volume_scales_with_problem(
        m in 8usize..80,
        n in 8usize..80,
        k in 8usize..60,
    ) {
        let a = fill(m * k, 13);
        let b = fill(k * n, 14);
        let mut c = vec![0.0f64; m * n];
        let call = GemmCall::new(m, n, k, 2);
        let stats = gemm_with_stats(&call, 1.0, &a, k, &b, n, 0.0, &mut c, n);
        // Everything must be packed at least once; padding only inflates.
        prop_assert!(stats.a_packed_bytes >= (m * k * 8) as u64);
        prop_assert!(stats.b_packed_bytes >= (k * n * 8) as u64);
        prop_assert!(stats.kernel_calls >= 1);
    }

    #[test]
    fn syrk_matches_naive_reference(
        m in 1usize..70,
        k in 0usize..50,
        threads in 1usize..7,
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
        seed in 0u64..500,
    ) {
        let a = fill((m * k).max(1), seed);
        let mut c = fill(m * m, seed + 1);
        let mut c_ref = c.clone();
        syrk_with_stats(m, k, alpha, &a, k.max(1), beta, &mut c, m, threads);
        naive_syrk(m, k, alpha, &a, k.max(1), beta, &mut c_ref, m);
        for i in 0..m {
            for j in 0..m {
                let (x, y) = (c[i * m + j], c_ref[i * m + j]);
                prop_assert!(
                    (x - y).abs() <= 1e-9 * (1.0 + y.abs()),
                    "({i},{j}): {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn gemv_matches_naive_reference(
        m in 1usize..200,
        n in 0usize..150,
        threads in 1usize..9,
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
        seed in 0u64..500,
    ) {
        let a = fill((m * n).max(1), seed);
        let x = fill(n.max(1), seed + 1);
        let mut y = fill(m, seed + 2);
        let mut y_ref = y.clone();
        gemv_with_stats(m, n, alpha, &a, n.max(1), &x, beta, &mut y, threads);
        naive_gemv(m, n, alpha, &a, n.max(1), &x, beta, &mut y_ref);
        for (i, (u, v)) in y.iter().zip(&y_ref).enumerate() {
            prop_assert!((u - v).abs() <= 1e-9 * (1.0 + v.abs()), "row {i}: {u} vs {v}");
        }
    }
}

proptest! {
    // The pooled driver spawns a pool per case; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn pooled_gemm_bit_matches_scoped_gemm(
        m in 1usize..80,
        n in 1usize..80,
        k in 1usize..60,
        threads in 2usize..8,
        seed in 0u64..200,
    ) {
        let pool = ThreadPool::new(4);
        let a = fill(m * k, seed);
        let b = fill(k * n, seed + 1);
        let mut c1 = fill(m * n, seed + 2);
        let mut c2 = c1.clone();
        let call = GemmCall::new(m, n, k, threads);
        gemm_with_stats(&call, 1.0, &a, k, &b, n, 0.5, &mut c1, n);
        gemm_with_stats_pooled(&pool, &call, 1.0, &a, k, &b, n, 0.5, &mut c2, n);
        prop_assert_eq!(c1, c2);
    }
}
