//! Schema-migration guarantees: pinned v1 and v2 installation artefacts
//! (committed under `tests/fixtures/`, written by the pre-redesign and
//! pre-plan runtimes respectively) must load at the current schema with
//! threads-only candidate grids and reproduce the writing build's
//! decisions bit for bit. (The v3 → v4 grid-widening fixture lives in
//! `tests/algorithm_equivalence.rs` next to the algorithm-axis suite.)

use std::path::{Path, PathBuf};

use adsala::prelude::*;

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

/// Decisions recorded from the pre-redesign (v1, PR 2) runtime for the
/// committed fixture: `((m, k, n), threads, predicted_runtime_s bits)`.
const V1_PINNED_DECISIONS: &[((u64, u64, u64), u32, u64)] = &[
    ((64, 64, 64), 2, 0x3ef443b62fa98b82),
    ((1000, 500, 1000), 6, 0x3f323a9371b2c949),
    ((64, 4096, 64), 1, 0x3f6321d6ddf11c85),
    ((128, 512, 128), 6, 0x3f323a9371b2c949),
    ((2000, 64, 2000), 24, 0x3f564e900c3c29ef),
    ((48, 48, 48), 2, 0x3ef443b62fa98b82),
    ((3000, 3000, 3000), 64, 0x3f72ac279008247d),
    ((1, 74000, 1), 1, 0x3f7bca6b6bd223c5),
];

/// Decisions recorded from the pre-plan (v2, PR 5) runtime for the
/// committed fixture, captured immediately before the ExecutionPlan
/// refactor landed.
const V2_PINNED_DECISIONS: &[((u64, u64, u64), u32, u64)] = &[
    ((64, 64, 64), 1, 0x3f1091f6760314da),
    ((1000, 500, 1000), 24, 0x3f4a29c9b3399047),
    ((64, 4096, 64), 1, 0x3f520da6f52e309c),
    ((128, 512, 128), 1, 0x3f2cef4d91414aab),
    ((2000, 64, 2000), 8, 0x3f43885b5df00ac0),
    ((48, 48, 48), 2, 0x3f103753d5a2512d),
    ((3000, 3000, 3000), 96, 0x3f8bdf51e35f8c65),
    ((1, 74000, 1), 1, 0x3f83dbf78a10ef9a),
];

#[test]
fn v1_fixture_loads_at_current_schema_with_model_in_gemm_slot() {
    let art = Artifact::load(&fixture_path("artifact_v1.json")).expect("fixture must load");
    assert_eq!(art.version, Artifact::VERSION, "loaded artefacts carry the current schema");
    assert_eq!(art.machine, "gadi-sim-v1");
    assert!(!art.candidates().is_empty());
    assert!(art.grid.is_threads_only(), "migrated artefacts degrade to threads-only grids");
    assert!(!art.grid.plan_features, "migrated configs were fitted without plan features");
    assert!(art.models.has_dedicated(Routine::Gemm));
    assert!(!art.models.has_dedicated(Routine::Syrk), "migration must not invent models");
    assert!(!art.models.has_dedicated(Routine::Gemv));
}

#[test]
fn v2_fixture_loads_at_current_schema_with_threads_only_grid() {
    let art = Artifact::load(&fixture_path("artifact_v2.json")).expect("fixture must load");
    assert_eq!(art.version, Artifact::VERSION);
    assert_eq!(art.machine, "gadi-sim-v2");
    assert_eq!(art.grid, PlanGrid::threads_only(art.candidates().to_vec()));
    assert!(art.models.has_dedicated(Routine::Gemm));
}

#[test]
fn v1_fixture_decides_bitwise_identically_to_pre_redesign_runtime() {
    let mut runtime = Artifact::load(&fixture_path("artifact_v1.json"))
        .expect("fixture must load")
        .into_runtime();
    for &((m, k, n), threads, runtime_bits) in V1_PINNED_DECISIONS {
        let d = runtime.select_threads(m, k, n);
        assert_eq!(d.threads(), threads, "thread decision drifted for {m}x{k}x{n}");
        assert!(d.plan.is_threads_only(), "migrated artefacts must emit threads-only plans");
        assert_eq!(
            d.predicted_runtime_s.to_bits(),
            runtime_bits,
            "predicted runtime drifted for {m}x{k}x{n}: {:e}",
            d.predicted_runtime_s
        );
    }
}

#[test]
fn v2_fixture_decides_bitwise_identically_to_pre_plan_runtime() {
    let mut runtime = Artifact::load(&fixture_path("artifact_v2.json"))
        .expect("fixture must load")
        .into_runtime();
    for &((m, k, n), threads, runtime_bits) in V2_PINNED_DECISIONS {
        let d = runtime.select_threads(m, k, n);
        assert_eq!(d.threads(), threads, "thread decision drifted for {m}x{k}x{n}");
        assert!(d.plan.is_threads_only(), "migrated artefacts must emit threads-only plans");
        assert_eq!(
            d.predicted_runtime_s.to_bits(),
            runtime_bits,
            "predicted runtime drifted for {m}x{k}x{n}: {:e}",
            d.predicted_runtime_s
        );
    }
}

#[test]
fn v1_fixture_serves_identically_through_the_concurrent_service() {
    let art = Artifact::load(&fixture_path("artifact_v1.json")).expect("fixture must load");
    let service = AdsalaService::with_config(
        art.into_bundle().into_shared(),
        ServiceConfig { pool_workers: 1, ..ServiceConfig::default() },
    );
    for &((m, k, n), threads, runtime_bits) in V1_PINNED_DECISIONS {
        let d = service.select_threads(m, k, n);
        assert_eq!(d.threads(), threads);
        assert_eq!(d.predicted_runtime_s.to_bits(), runtime_bits);
    }
}

#[test]
fn v2_fixture_serves_identically_through_the_concurrent_service() {
    let art = Artifact::load(&fixture_path("artifact_v2.json")).expect("fixture must load");
    let service = AdsalaService::with_config(
        art.into_bundle().into_shared(),
        ServiceConfig { pool_workers: 1, ..ServiceConfig::default() },
    );
    for &((m, k, n), threads, runtime_bits) in V2_PINNED_DECISIONS {
        let d = service.select_threads(m, k, n);
        assert_eq!(d.threads(), threads);
        assert_eq!(d.predicted_runtime_s.to_bits(), runtime_bits);
    }
}

#[test]
fn migrated_fixture_rewrites_at_current_schema_and_round_trips() {
    for name in ["artifact_v1.json", "artifact_v2.json"] {
        let art = Artifact::load(&fixture_path(name)).expect("fixture must load");
        let json = art.to_json().expect("serialise");
        let tag = format!("\"version\":{}", Artifact::VERSION);
        assert!(json.contains(&tag), "rewritten artefacts must carry the current schema ({name})");
        assert!(json.contains("\"models\""), "the per-routine model table must survive");
        assert!(json.contains("\"grid\""), "the candidate plan grid must survive");
        let back = Artifact::from_json(&json).expect("current-schema round trip");
        let mut a = art.into_runtime();
        let mut b = back.into_runtime();
        for &((m, k, n), _, _) in V1_PINNED_DECISIONS {
            assert_eq!(a.select_threads(m, k, n), b.select_threads(m, k, n));
        }
    }
}
