//! Schema-migration guarantees: a pinned v1 installation artefact
//! (committed under `tests/fixtures/`, written by the pre-redesign
//! runtime) must load as schema v2 with its model in the GEMM slot and
//! reproduce the pre-redesign runtime's decisions bit for bit.

use std::path::{Path, PathBuf};

use adsala::prelude::*;

fn fixture_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/artifact_v1.json")
}

/// Decisions recorded from the pre-redesign (v1, PR 2) runtime for the
/// committed fixture: `((m, k, n), threads, predicted_runtime_s bits)`.
const PINNED_DECISIONS: &[((u64, u64, u64), u32, u64)] = &[
    ((64, 64, 64), 2, 0x3ef443b62fa98b82),
    ((1000, 500, 1000), 6, 0x3f323a9371b2c949),
    ((64, 4096, 64), 1, 0x3f6321d6ddf11c85),
    ((128, 512, 128), 6, 0x3f323a9371b2c949),
    ((2000, 64, 2000), 24, 0x3f564e900c3c29ef),
    ((48, 48, 48), 2, 0x3ef443b62fa98b82),
    ((3000, 3000, 3000), 64, 0x3f72ac279008247d),
    ((1, 74000, 1), 1, 0x3f7bca6b6bd223c5),
];

#[test]
fn v1_fixture_loads_as_v2_with_model_in_gemm_slot() {
    let art = Artifact::load(&fixture_path()).expect("fixture must load");
    assert_eq!(art.version, Artifact::VERSION, "loaded artefacts carry the current schema");
    assert_eq!(art.machine, "gadi-sim-v1");
    assert!(!art.candidates.is_empty());
    assert!(art.models.has_dedicated(Routine::Gemm));
    assert!(!art.models.has_dedicated(Routine::Syrk), "migration must not invent models");
    assert!(!art.models.has_dedicated(Routine::Gemv));
}

#[test]
fn v1_fixture_decides_bitwise_identically_to_pre_redesign_runtime() {
    let mut runtime = Artifact::load(&fixture_path()).expect("fixture must load").into_runtime();
    for &((m, k, n), threads, runtime_bits) in PINNED_DECISIONS {
        let d = runtime.select_threads(m, k, n);
        assert_eq!(d.threads, threads, "thread decision drifted for {m}x{k}x{n}");
        assert_eq!(
            d.predicted_runtime_s.to_bits(),
            runtime_bits,
            "predicted runtime drifted for {m}x{k}x{n}: {:e}",
            d.predicted_runtime_s
        );
    }
}

#[test]
fn v1_fixture_serves_identically_through_the_concurrent_service() {
    let art = Artifact::load(&fixture_path()).expect("fixture must load");
    let service = AdsalaService::with_config(
        art.into_bundle().into_shared(),
        ServiceConfig { pool_workers: 1, ..ServiceConfig::default() },
    );
    for &((m, k, n), threads, runtime_bits) in PINNED_DECISIONS {
        let d = service.select_threads(m, k, n);
        assert_eq!(d.threads, threads);
        assert_eq!(d.predicted_runtime_s.to_bits(), runtime_bits);
    }
}

#[test]
fn migrated_fixture_rewrites_as_v2_and_round_trips() {
    let art = Artifact::load(&fixture_path()).expect("fixture must load");
    let json = art.to_json().expect("serialise");
    assert!(json.contains("\"version\":2"), "rewritten artefacts must be v2");
    assert!(json.contains("\"models\""), "v2 carries the per-routine model table");
    let back = Artifact::from_json(&json).expect("v2 round trip");
    let mut a = art.into_runtime();
    let mut b = back.into_runtime();
    for &((m, k, n), _, _) in PINNED_DECISIONS {
        assert_eq!(a.select_threads(m, k, n), b.select_threads(m, k, n));
    }
}
