//! Workspace umbrella crate for the ADSALA reproduction.
//!
//! Re-exports the public API of every crate in the workspace so the
//! examples (`examples/`) and cross-crate integration tests (`tests/`)
//! have a single import root. Library users should depend on the
//! individual crates (`adsala`, `adsala-gemm`, …) directly.

pub use adsala;
pub use adsala_gemm;
pub use adsala_machine;
pub use adsala_ml;
pub use adsala_sampling;

/// Workspace version, shared by every crate.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
